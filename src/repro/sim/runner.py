"""ScaledRunSimulator: one full benchmark run at paper scale.

Composes the I/O model (per-rank skewed loading under filesystem
contention), the fabric cost model (tree broadcast, fused ring
allreduce per step), the compute model (framework overhead + math), and
the device power states into a :class:`~repro.sim.report.SimRunReport`.

The phase sequence mirrors the functional runner in
:mod:`repro.core.parallel` one-for-one, so a change to the methodology
(epoch partitioning, batch scaling, load method) flows through both
execution modes identically.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.candle.base import BenchmarkSpec
from repro.candle.registry import get_benchmark
from repro.cluster.machine import MachineSpec, get_machine
from repro.comms import (
    DEFAULT_OPTIONS,
    CollectiveOptions,
    Topology,
    plan_allreduce,
    plan_broadcast,
)
from repro.core.scaling import ScalingPlan
from repro.mpi.network import CollectiveCostModel
from repro.sim.computemodel import (
    OVERLAP_EFFICIENCY,
    ComputeModel,
    exposed_comm_seconds,
    overlap_fraction,
)
from repro.sim.engine import PhaseSimulator
from repro.sim.iomodel import IoModel
from repro.sim.report import SimRunReport
from repro.train.options import TrainOptions

__all__ = ["ScaledRunSimulator", "simulate_run"]


class ScaledRunSimulator:
    """Simulates CANDLE/Horovod runs on one machine model.

    ``overlap`` models Horovod's signature interleaving of communication
    and computation (§2.2): gradients of already-backpropagated layers
    reduce while earlier layers still compute, hiding up to
    ``overlap_fraction`` of each step's allreduce behind its backward
    pass. ``overlap=False`` is the naive synchronous schedule (an
    ablation target).

    ``collective`` is the run's :class:`repro.comms.CollectiveOptions`:
    gradient traffic is priced by planning each fused buffer with
    :func:`repro.comms.plan_allreduce` on this machine's topology and
    charging the schedule on its fabric — the same planner the
    functional engine executes, so algorithm/compression/chunking
    choices move simulated time too. The defaults resolve to the
    hierarchical schedule and price identically to the pre-engine cost
    model.
    """

    #: share of the backward pass a fused allreduce can hide behind;
    #: the first-fired (deepest) tensors cannot overlap with anything
    OVERLAP_FRACTION = OVERLAP_EFFICIENCY

    #: emit per-step timeline events up to this many train steps per run
    #: (above it, bands merge per epoch to bound event counts)
    MAX_STEP_EVENTS = 256

    def __init__(
        self,
        machine: Union[MachineSpec, str],
        overlap: bool = True,
        collective: Optional[CollectiveOptions] = None,
        train: Optional[TrainOptions] = None,
        power_state=None,
    ):
        self.machine = get_machine(machine) if isinstance(machine, str) else machine
        # ``power_state`` pins the worker devices to one DVFS rung (a
        # PowerState or a ladder state name like "p2"): compute phases
        # stretch by 1/compute_scale while every active wattage scales
        # by power_scale. None or the ladder's top state reproduce the
        # nominal calibration exactly.
        self.power_state = self.machine.resolve_power_state(power_state)
        self.io = IoModel(self.machine)
        self.compute = ComputeModel(self.machine, power_state=self.power_state)
        if train is not None:
            # one TrainOptions prices the same run the functional step
            # executes; explicit overlap=/collective= kwargs stay for the
            # sim-only call sites that predate it
            self.overlap = bool(train.overlap)
            eff = train.effective_collective
            self.collective = eff if eff is not None else DEFAULT_OPTIONS
        else:
            self.overlap = bool(overlap)
            self.collective = collective if collective is not None else DEFAULT_OPTIONS
        self.train = train

    def device_power(self):
        """The worker device's power model at this run's DVFS state."""
        power = self.machine.worker_device_power()
        return self.power_state.apply(power) if self.power_state else power

    def effective_step_comm_seconds(
        self, spec: BenchmarkSpec, nworkers: int, batch_size: int
    ) -> float:
        """Per-step communication time *exposed* on the critical path."""
        comm = self.allreduce_step_seconds(spec, nworkers)
        if not self.overlap or comm == 0.0:
            return comm
        backward = self.compute.backward_seconds(spec, batch_size)
        return exposed_comm_seconds(comm, backward, self.OVERLAP_FRACTION)

    def step_overlap_fraction(
        self, spec: BenchmarkSpec, nworkers: int, batch_size: int
    ) -> float:
        """Modeled share of per-step allreduce hidden behind backward."""
        if not self.overlap:
            return 0.0
        comm = self.allreduce_step_seconds(spec, nworkers)
        backward = self.compute.backward_seconds(spec, batch_size)
        return overlap_fraction(comm, backward, self.OVERLAP_FRACTION)

    # -- communication ---------------------------------------------------------
    def _cost_model(self) -> CollectiveCostModel:
        return CollectiveCostModel(
            self.machine.fabric, ranks_per_node=self.machine.workers_per_node
        )

    def allreduce_step_seconds(self, spec: BenchmarkSpec, nworkers: int) -> float:
        """Per-step gradient allreduce: planned fused-buffer schedules."""
        if nworkers <= 1:
            return 0.0
        cm = self._cost_model()
        topo = Topology.from_machine(self.machine, nworkers)
        opts = self.collective
        remaining = spec.gradient_bytes
        total = cm.negotiate(nworkers)
        while remaining > 0:
            buf = min(remaining, opts.fusion_bytes)
            total += plan_allreduce(buf, topo, opts).seconds(self.machine.fabric)
            remaining -= buf
        return total

    def broadcast_seconds(self, spec: BenchmarkSpec, nworkers: int) -> float:
        """Initial weight broadcast (planned tree) plus negotiation."""
        if nworkers <= 1:
            return 0.0
        cm = self._cost_model()
        topo = Topology.from_machine(self.machine, nworkers)
        schedule = plan_broadcast(spec.gradient_bytes, topo, self.collective)
        return cm.negotiate(nworkers) + schedule.seconds(self.machine.fabric)

    # -- the run ------------------------------------------------------------------
    def run(
        self,
        benchmark: Union[BenchmarkSpec, str],
        plan: ScalingPlan,
        method: str = "original",
        seed: int = 0,
        keep_profiles: bool = True,
        tracer=None,
    ) -> SimRunReport:
        """Simulate one run; returns the full report.

        ``method`` picks the data-loading implementation ('original',
        'chunked', 'dask'). ``seed`` fixes the per-rank I/O skew draw.
        ``tracer`` (a :class:`repro.telemetry.Tracer`) receives one span
        per simulated phase of the tracked ranks, in sim time; bind a
        tracked rank's power profile afterwards for per-span joules.
        """
        spec = (
            get_benchmark(benchmark).spec if isinstance(benchmark, str) else benchmark
        )
        n = plan.nworkers
        power = self.device_power()

        # ---- phase 1: data loading (skewed, contended) -------------------
        base_load = self.io.benchmark_load_seconds(spec, method, nclients=n)
        factors = self.machine.io_skew.factors(n, seed=seed)
        # track the fastest/median/slowest loaders: their profiles span
        # the negotiate_broadcast skew the paper's timelines show
        order = np.argsort(factors)
        tracked = {int(order[0]), int(order[len(order) // 2]), int(order[-1])}
        sim = PhaseSimulator(n, track_ranks=tracked, tracer=tracer)
        load_vector = base_load * factors
        sim.advance(load_vector, "data_loading", power.io_w)

        # ---- negotiate + broadcast ----------------------------------------
        waits = sim.synchronize("negotiate_broadcast", power.idle_w)
        bcast = self.broadcast_seconds(spec, n)
        sim.advance(bcast, "mpi_broadcast", power.io_w)

        # ---- phase 2: training ---------------------------------------------
        # one-time graph build / autotune, folded into the "TensorFlow"
        # (training) phase as the paper's timings do
        if self.machine.session_warmup_s > 0:
            sim.advance(
                self.machine.session_warmup_s,
                "train_compute",
                power.compute_w(0.3),
            )
        steps = spec.steps_per_epoch_at(plan.batch_size)
        step_s = self.compute.step_seconds(spec, plan.batch_size)
        comm_s = self.effective_step_comm_seconds(spec, n, plan.batch_size)
        intensity = self.compute.train_intensity(spec, plan.batch_size)
        p_train = power.compute_w(intensity)
        p_comm = power.communicate_w()
        # timeline granularity: per-step alternation when the event count
        # stays small (Fig 7b's periodic allreduce bands), else merged
        # per-epoch bands (Fig 19's "8 pieces for 8 epochs" zoom level)
        per_step = plan.epochs_per_worker * steps <= self.MAX_STEP_EVENTS
        for _ in range(plan.epochs_per_worker):
            if per_step and comm_s > 0:
                for _ in range(steps):
                    sim.lockstep(step_s, "train_compute", p_train)
                    sim.lockstep(comm_s, "nccl_allreduce", p_comm)
            else:
                sim.lockstep(step_s, "train_compute", p_train, repeats=steps)
                if comm_s > 0:
                    sim.lockstep(comm_s, "nccl_allreduce", p_comm, repeats=steps)

        # ---- phase 3: evaluation --------------------------------------------
        sim.advance(
            self.compute.eval_seconds(spec),
            "evaluate",
            power.compute_w(intensity * 0.8),
        )

        total = sim.elapsed_s
        energy = sim.mean_energy_j()
        phases = sim.phase_report()
        # Report the *mean* per-rank load and wait: every rank satisfies
        # load_r + wait_r = max(load), so the means compose exactly to
        # the makespan (max load + max wait would double-count the skew).
        return SimRunReport(
            machine=self.machine.name,
            benchmark=spec.name,
            plan=plan,
            method=method,
            load_s=float(np.mean(load_vector)),
            broadcast_wait_s=float(np.mean(waits)),
            broadcast_s=phases.get("mpi_broadcast", 0.0),
            train_compute_s=phases.get("train_compute", 0.0),
            train_comm_s=phases.get("nccl_allreduce", 0.0),
            eval_s=phases.get("evaluate", 0.0),
            overlap_fraction=self.step_overlap_fraction(spec, n, plan.batch_size),
            power_state=self.power_state.name if self.power_state else "",
            avg_power_w=energy / total if total > 0 else 0.0,
            energy_per_worker_j=energy,
            timeline=sim.timeline if keep_profiles else None,
            profiles=sim.profiles if keep_profiles else {},
        )


def simulate_run(
    benchmark: Union[BenchmarkSpec, str],
    machine: Union[MachineSpec, str],
    plan: ScalingPlan,
    method: str = "original",
    seed: int = 0,
    collective: Optional[CollectiveOptions] = None,
) -> SimRunReport:
    """One-shot convenience wrapper around :class:`ScaledRunSimulator`."""
    return ScaledRunSimulator(machine, collective=collective).run(
        benchmark, plan, method=method, seed=seed
    )
