"""Training-compute cost model.

One batch step costs::

    step_s = machine.step_overhead_s + batch * per_sample_s
    per_sample_s = 6 * model_params / machine.worker_flops()

(forward ≈ 2 FLOP/param/sample, backward ≈ twice the forward). For the
CANDLE benchmarks the framework overhead term dominates — NT3 at batch
20 spends ~34 ms of a ~184 ms step in math — which is why the paper
finds larger batches give "smaller time per epoch" (fewer overhead
payments for the same sample count) and why NT3 is "not
compute-intensive" on Summit.

The model also supplies the training-phase GPU *intensity* used by the
power model: a base utilization (clocks/memory held high by the kernel
stream) plus the math duty cycle, with a mild negative batch exponent
fitted to Table 2's observation that batch 40 runs at slightly lower
average power than batch 20.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.candle.base import BenchmarkSpec
from repro.cluster.machine import MachineSpec
from repro.cluster.power import PowerState

__all__ = [
    "ComputeModel",
    "exposed_comm_seconds",
    "overlap_fraction",
    "OVERLAP_EFFICIENCY",
]

#: FLOPs per parameter per sample for one fwd+bwd pass
_FLOPS_PER_PARAM = 6.0

#: share of a step's allreduce the wait-free scheduler can hide behind
#: backward when backward is long enough — the first-fired (deepest)
#: buckets become ready only as backward *ends*, so some comm is always
#: exposed at the drain fence
OVERLAP_EFFICIENCY = 0.7


def exposed_comm_seconds(
    comm_s: float, backward_s: float, efficiency: float = OVERLAP_EFFICIENCY
) -> float:
    """Per-step communication left on the critical path under overlap.

    The overlapped timeline hides ``min(comm * efficiency, backward)``
    of the gradient exchange behind the backward pass (wait-free
    backprop); the remainder is what the pre-update drain fence waits
    out. ``efficiency`` caps the hideable share — the earliest layers'
    buckets release only at backward's end.
    """
    if comm_s < 0 or backward_s < 0:
        raise ValueError("comm_s and backward_s must be non-negative")
    if not 0.0 <= efficiency <= 1.0:
        raise ValueError(f"efficiency must be in [0, 1], got {efficiency}")
    hidden = min(comm_s * efficiency, backward_s)
    return comm_s - hidden


def overlap_fraction(
    comm_s: float, backward_s: float, efficiency: float = OVERLAP_EFFICIENCY
) -> float:
    """Share of per-step communication hidden behind backward (0 when
    there is no communication)."""
    if comm_s <= 0:
        return 0.0
    exposed = exposed_comm_seconds(comm_s, backward_s, efficiency)
    return (comm_s - exposed) / comm_s


@dataclass(frozen=True)
class ComputeModel:
    """Per-step / per-epoch training times for one machine."""

    machine: MachineSpec
    #: floor + slope mapping math duty cycle to power-model intensity
    intensity_base: float = 0.30
    intensity_span: float = 0.70
    #: empirical batch-size power exponent (Table 2: batch 40 draws less)
    batch_power_exponent: float = 0.35
    #: DVFS operating point; None = the nominal (top-of-ladder) clock.
    #: A lower state divides the sustained math rate by its
    #: ``compute_scale``, stretching the device-math share of every
    #: step while the host-side framework overhead stays put — so the
    #: duty cycle (and with it the power-model intensity) *rises* as
    #: the clock falls, exactly the shape real DVFS traces show.
    power_state: Optional[PowerState] = None

    def rate_scale(self) -> float:
        """Sustained-compute multiplier of the active power state."""
        return self.power_state.compute_scale if self.power_state else 1.0

    def per_sample_seconds(self, spec: BenchmarkSpec) -> float:
        """Math seconds to push one sample through fwd+bwd."""
        nominal = (
            _FLOPS_PER_PARAM
            * spec.model_params_full
            / self.machine.worker_flops(spec.name)
        )
        return nominal / self.rate_scale()

    def step_seconds(self, spec: BenchmarkSpec, batch_size: int) -> float:
        """One training batch step (framework overhead + math)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return self.machine.step_overhead_s + batch_size * self.per_sample_seconds(spec)

    def backward_seconds(self, spec: BenchmarkSpec, batch_size: int) -> float:
        """The backward share of a step's math — the window wait-free
        backprop can hide gradient traffic in (backward ≈ 2/3 of
        fwd+bwd, since backward differentiates both inputs and weights).
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return 2.0 / 3.0 * batch_size * self.per_sample_seconds(spec)

    def epoch_compute_seconds(self, spec: BenchmarkSpec, batch_size: int) -> float:
        """One epoch's pure-compute time (no communication)."""
        steps = spec.steps_per_epoch_at(batch_size)
        return steps * self.step_seconds(spec, batch_size)

    def eval_seconds(self, spec: BenchmarkSpec, batch_size: int = 256) -> float:
        """Phase 3: forward-only pass over the test set."""
        steps = max(1, spec.test_samples // batch_size)
        forward_per_sample = self.per_sample_seconds(spec) / 3.0
        return steps * self.machine.step_overhead_s * 0.5 + (
            spec.test_samples * forward_per_sample
        )

    def math_duty_cycle(self, spec: BenchmarkSpec, batch_size: int) -> float:
        """Fraction of a step spent in device math (vs framework)."""
        step = self.step_seconds(spec, batch_size)
        return (batch_size * self.per_sample_seconds(spec)) / step

    def train_intensity(self, spec: BenchmarkSpec, batch_size: int) -> float:
        """Power-model intensity of the training phase, in [0, 1]."""
        duty = self.math_duty_cycle(spec, batch_size)
        intensity = self.intensity_base + self.intensity_span * duty
        if batch_size > spec.batch_size:
            intensity *= (spec.batch_size / batch_size) ** self.batch_power_exponent
        return min(1.0, intensity)
