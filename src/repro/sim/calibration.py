"""Calibration anchors: the paper scalars the machine models are fit to.

The simulator's free constants (parse rates, contention penalties, step
overheads, compute efficiencies, power states) were fitted *once*
against the scalars below, which the paper states explicitly. All other
outputs — every scaling curve, crossover, and improvement percentage in
EXPERIMENTS.md — are derived, not fitted.

``calibration_report()`` re-derives each anchor from the current models
so drift is visible (the test suite asserts every anchor within
tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.candle.nt3 import NT3_SPEC
from repro.candle.p1b1 import P1B1_SPEC
from repro.candle.p1b2 import P1B2_SPEC
from repro.candle.p1b3 import P1B3_SPEC
from repro.cluster.machine import SUMMIT, THETA, MachineSpec
from repro.core.scaling import strong_scaling_plan
from repro.sim.computemodel import ComputeModel
from repro.sim.iomodel import IoModel, benchmark_files

__all__ = ["Anchor", "Calibration", "DEFAULT_CALIBRATION", "calibration_report"]


@dataclass(frozen=True)
class Anchor:
    """One published scalar and how the model re-derives it."""

    name: str
    paper_value: float
    derive: Callable[[], float]
    rel_tolerance: float = 0.25

    def model_value(self) -> float:
        return self.derive()

    def within_tolerance(self) -> bool:
        m = self.model_value()
        return abs(m - self.paper_value) <= self.rel_tolerance * self.paper_value


def _load_anchor(machine: MachineSpec, spec, which: str, method: str) -> Callable[[], float]:
    def derive() -> float:
        io = IoModel(machine)
        train, test = benchmark_files(spec)
        return io.load_seconds(train if which == "train" else test, method)

    return derive


def _epoch_anchor(machine: MachineSpec, spec, batch: int) -> Callable[[], float]:
    def derive() -> float:
        return ComputeModel(machine).epoch_compute_seconds(spec, batch)

    return derive


def _epoch_with_comm_anchor(machine: MachineSpec, spec, batch: int, nworkers: int) -> Callable[[], float]:
    def derive() -> float:
        from repro.sim.runner import ScaledRunSimulator

        sim = ScaledRunSimulator(machine)
        compute = sim.compute.epoch_compute_seconds(spec, batch)
        comm = sim.effective_step_comm_seconds(
            spec, nworkers, batch
        ) * spec.steps_per_epoch_at(batch)
        return compute + comm

    return derive


def _bcast_wait_anchor(machine: MachineSpec, spec, nworkers: int, method: str) -> Callable[[], float]:
    def derive() -> float:
        io = IoModel(machine)
        load = io.benchmark_load_seconds(spec, method, nclients=nworkers)
        return load * machine.io_skew.expected_spread(nworkers)

    return derive


@dataclass
class Calibration:
    """A named set of anchors."""

    anchors: List[Anchor]

    def report(self) -> list[dict]:
        rows = []
        for a in self.anchors:
            model = a.model_value()
            rows.append(
                {
                    "anchor": a.name,
                    "paper": a.paper_value,
                    "model": round(model, 2),
                    "rel_err_pct": round(100 * (model - a.paper_value) / a.paper_value, 1),
                    "ok": a.within_tolerance(),
                }
            )
        return rows


def _build_default() -> Calibration:
    anchors = [
        # --- Table 3: Summit single-client data loading ------------------
        Anchor("T3 NT3 train original", 81.72, _load_anchor(SUMMIT, NT3_SPEC, "train", "original")),
        Anchor("T3 NT3 train chunked", 14.30, _load_anchor(SUMMIT, NT3_SPEC, "train", "chunked")),
        Anchor("T3 NT3 test original", 22.25, _load_anchor(SUMMIT, NT3_SPEC, "test", "original")),
        Anchor("T3 NT3 test chunked", 5.25, _load_anchor(SUMMIT, NT3_SPEC, "test", "chunked")),
        Anchor("T3 P1B1 train original", 235.68, _load_anchor(SUMMIT, P1B1_SPEC, "train", "original"), 0.35),
        Anchor("T3 P1B1 train chunked", 30.99, _load_anchor(SUMMIT, P1B1_SPEC, "train", "chunked"), 0.35),
        Anchor("T3 P1B2 train original", 40.98, _load_anchor(SUMMIT, P1B2_SPEC, "train", "original"), 0.35),
        Anchor("T3 P1B2 train chunked", 11.03, _load_anchor(SUMMIT, P1B2_SPEC, "train", "chunked"), 0.35),
        Anchor("T3 P1B3 train original", 5.41, _load_anchor(SUMMIT, P1B3_SPEC, "train", "original"), 0.5),
        Anchor("T3 P1B3 train chunked", 5.34, _load_anchor(SUMMIT, P1B3_SPEC, "train", "chunked"), 0.5),
        # --- Table 4: Theta single-client data loading ---------------------
        Anchor("T4 NT3 train original", 52.91, _load_anchor(THETA, NT3_SPEC, "train", "original")),
        Anchor("T4 NT3 train chunked", 13.84, _load_anchor(THETA, NT3_SPEC, "train", "chunked")),
        Anchor("T4 P1B1 train original", 139.71, _load_anchor(THETA, P1B1_SPEC, "train", "original"), 0.35),
        Anchor("T4 P1B2 train original", 25.07, _load_anchor(THETA, P1B2_SPEC, "train", "original"), 0.35),
        Anchor("T4 P1B3 train original", 4.74, _load_anchor(THETA, P1B3_SPEC, "train", "original"), 0.5),
        # --- §4.2.1 / Table 2: NT3 epoch times ------------------------------
        Anchor("NT3 Summit s/epoch (1 GPU, b20)", 10.30, _epoch_anchor(SUMMIT, NT3_SPEC, 20)),
        Anchor(
            "NT3 Summit s/epoch (384 GPUs, b20)",
            22.0,
            _epoch_with_comm_anchor(SUMMIT, NT3_SPEC, 20, 384),
            0.30,
        ),
        Anchor("NT3 Theta s/epoch (24 nodes)", 695.0, _epoch_anchor(THETA, NT3_SPEC, 20), 0.30),
        # --- §4.2.1 / Fig 12: broadcast overhead on 384 GPUs ------------------
        Anchor(
            "NT3 bcast wait 384 GPUs original",
            43.72,
            _bcast_wait_anchor(SUMMIT, NT3_SPEC, 384, "original"),
            0.40,
        ),
        Anchor(
            "NT3 bcast wait 384 GPUs optimized",
            4.65,
            _bcast_wait_anchor(SUMMIT, NT3_SPEC, 384, "chunked"),
            0.80,
        ),
    ]
    return Calibration(anchors)


DEFAULT_CALIBRATION = _build_default()


def calibration_report() -> list[dict]:
    """Model-vs-paper rows for every anchor (used by tests and docs)."""
    return DEFAULT_CALIBRATION.report()
