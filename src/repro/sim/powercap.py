"""Node power capping via DVFS demotion.

Theta's CapMC (the tool behind the paper's node power measurements) can
*enforce* a node power budget, not just read one; modern GPU clusters
do the same through ``nvidia-smi -pl``. This module models the simplest
sound policy: given a node cap in watts, demote every rank's device
down the :class:`~repro.cluster.power.FrequencyLadder` until the node's
*worst-case* draw fits under the budget, then price the resulting
slowdown through the ordinary :class:`~repro.sim.runner.ScaledRunSimulator`.

Capping against the worst case (all devices at full compute intensity
simultaneously — exactly what a bulk-synchronous training step does)
means a capped run respects its budget *by construction*: no phase the
simulator can emit draws more than the chosen state's peak, so no
sampled profile can cross the cap. The report still verifies this
against the tracked ranks' profiles, so the invariant is checked, not
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.candle.base import BenchmarkSpec
from repro.candle.registry import get_benchmark
from repro.cluster.machine import MachineSpec, get_machine
from repro.cluster.power import FrequencyLadder, PowerState
from repro.comms import CollectiveOptions
from repro.core.scaling import ScalingPlan
from repro.sim.report import SimRunReport, improvement_percent
from repro.sim.runner import ScaledRunSimulator

__all__ = [
    "PowerCapPlan",
    "CappedSimReport",
    "PowerCapScheduler",
    "plan_power_cap",
    "simulate_capped_run",
]


def peak_rank_watts(power_model) -> float:
    """Worst-case draw of one rank's device under a power model.

    The maximum over every wattage the simulator can charge: full-
    intensity compute, I/O, communication, and idle.
    """
    return max(
        power_model.compute_w(1.0),
        power_model.io_w,
        power_model.communicate_w(),
        power_model.idle_w,
    )


@dataclass(frozen=True)
class PowerCapPlan:
    """The ladder state a node cap resolves to."""

    cap_node_w: float
    state: PowerState
    #: worst-case node draw at the chosen state (workers x device peak)
    peak_node_w: float
    #: rungs walked down from the top to honour the cap
    demotions: int

    @property
    def headroom_w(self) -> float:
        return self.cap_node_w - self.peak_node_w


@dataclass
class CappedSimReport:
    """A capped run priced against its uncapped twin."""

    plan: PowerCapPlan
    capped: SimRunReport
    uncapped: SimRunReport
    #: max sampled node draw across the capped run's tracked profiles
    observed_peak_node_w: float

    @property
    def within_cap(self) -> bool:
        """The by-construction invariant, re-checked on the output."""
        return self.observed_peak_node_w <= self.plan.cap_node_w + 1e-9

    @property
    def slowdown(self) -> float:
        """Capped runtime over uncapped (>= 1 when the cap bites)."""
        return self.capped.total_s / self.uncapped.total_s

    @property
    def energy_saving_pct(self) -> float:
        """Energy saved (or, negative, spent) by honouring the cap."""
        return improvement_percent(
            self.uncapped.total_energy_j, self.capped.total_energy_j
        )

    def as_row(self) -> dict:
        return {
            "cap_node_w": round(self.plan.cap_node_w, 0),
            "state": self.plan.state.name,
            "peak_node_w": round(self.plan.peak_node_w, 1),
            "observed_peak_node_w": round(self.observed_peak_node_w, 1),
            "within_cap": self.within_cap,
            "slowdown": round(self.slowdown, 3),
            "energy_saving_pct": round(self.energy_saving_pct, 2),
        }


def plan_power_cap(
    machine: Union[MachineSpec, str],
    cap_node_w: float,
    ladder: Optional[FrequencyLadder] = None,
) -> PowerCapPlan:
    """Highest-frequency state whose worst-case node draw fits the cap.

    Walks the ladder top-down (each miss is one demotion), so capped
    runs surrender as little performance as the budget allows. Raises
    when even the ladder's floor cannot fit — an unsatisfiable cap is a
    configuration error, not a run to quietly mis-price.
    """
    machine = get_machine(machine) if isinstance(machine, str) else machine
    if cap_node_w <= 0:
        raise ValueError(f"cap_node_w must be positive, got {cap_node_w}")
    ladder = ladder if ladder is not None else machine.frequency_ladder()
    base = machine.worker_device_power()
    demotions = 0
    for state in reversed(ladder.states):
        peak = machine.workers_per_node * peak_rank_watts(state.apply(base))
        if peak <= cap_node_w:
            return PowerCapPlan(
                cap_node_w=float(cap_node_w),
                state=state,
                peak_node_w=peak,
                demotions=demotions,
            )
        demotions += 1
    floor = machine.workers_per_node * peak_rank_watts(
        ladder.min_state.apply(base)
    )
    raise ValueError(
        f"cap {cap_node_w} W is unsatisfiable on {machine.name}: the "
        f"ladder floor ({ladder.min_state.name}) still peaks at "
        f"{floor:.0f} W/node"
    )


class PowerCapScheduler:
    """Runs benchmarks under a node power budget.

    ``run`` simulates the same (benchmark, plan) twice — once pinned to
    the cap-satisfying state, once uncapped at nominal — and reports
    the price of the budget: slowdown, energy delta, and the observed
    peak node draw of the capped run's power profiles.
    """

    def __init__(
        self,
        machine: Union[MachineSpec, str],
        collective: Optional[CollectiveOptions] = None,
    ):
        self.machine = get_machine(machine) if isinstance(machine, str) else machine
        self.collective = collective

    def plan(self, cap_node_w: float) -> PowerCapPlan:
        return plan_power_cap(self.machine, cap_node_w)

    def run(
        self,
        benchmark: Union[BenchmarkSpec, str],
        plan: ScalingPlan,
        cap_node_w: float,
        method: str = "original",
        seed: int = 0,
    ) -> CappedSimReport:
        spec = (
            get_benchmark(benchmark).spec if isinstance(benchmark, str) else benchmark
        )
        cap_plan = self.plan(cap_node_w)
        capped_sim = ScaledRunSimulator(
            self.machine, collective=self.collective, power_state=cap_plan.state
        )
        capped = capped_sim.run(spec, plan, method=method, seed=seed)
        uncapped = ScaledRunSimulator(self.machine, collective=self.collective).run(
            spec, plan, method=method, seed=seed, keep_profiles=False
        )
        observed_rank_w = max(
            (float(w) for prof in capped.profiles.values() for _, _, _, w in prof.phases),
            default=0.0,
        )
        return CappedSimReport(
            plan=cap_plan,
            capped=capped,
            uncapped=uncapped,
            observed_peak_node_w=self.machine.workers_per_node * observed_rank_w,
        )


def simulate_capped_run(
    benchmark: Union[BenchmarkSpec, str],
    machine: Union[MachineSpec, str],
    plan: ScalingPlan,
    cap_node_w: float,
    method: str = "original",
    seed: int = 0,
) -> CappedSimReport:
    """One-shot convenience wrapper around :class:`PowerCapScheduler`."""
    return PowerCapScheduler(machine).run(
        benchmark, plan, cap_node_w, method=method, seed=seed
    )
