"""Serving cost model: the analytical twin of :mod:`repro.serve`.

Prices one :class:`~repro.serve.ServeOptions` configuration on a
machine model, the same way :class:`~repro.sim.ComputeModel` prices a
training step — so "what batch size / replica count holds p99 under
the deadline at this traffic?" can be answered without running the
functional plane.

One dispatched batch of ``b`` rows costs::

    service_s = 0.5 * step_overhead_s            # framework, fwd-only
              + b * per_sample_s / 3             # forward math
              + rpc(request bytes) + rpc(result bytes)

(the same forward-thirds and half-overhead conventions
:meth:`ComputeModel.eval_seconds` uses; RPC legs priced by the
machine's :class:`~repro.mpi.network.FabricSpec` alpha-beta link).
Batching's throughput win is the overhead amortization: rows/s
capacity grows toward ``b / service_s`` per replica while the fixed
term shrinks per row.

Latency decomposes as *assembly wait* (time the batcher holds a
request while filling — bounded by the options' assembly budget) plus
*queueing* (M/D/1 mean wait at the measured utilization) plus the
batch service itself. The p99 estimate is deliberately conservative:
full assembly budget plus an exponential-tail multiple of the mean
queue wait.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.candle.base import BenchmarkSpec
from repro.cluster.machine import MachineSpec
from repro.mpi.network import CollectiveCostModel
from repro.serve.options import ServeOptions
from repro.sim.computemodel import ComputeModel

__all__ = ["ServeModel", "ServePoint"]

#: exponential-tail multiplier taking a *mean* queue wait to its ~p99
#: (P[W > t] = exp(-t / mean) crosses 1% at t = mean * ln 100)
_P99_TAIL_FACTOR = float(np.log(100.0))

#: bytes per feature/prediction element on the serving wire (fp64 —
#: the functional plane ships NumPy default precision)
_ELEM_BYTES = 8


@dataclass(frozen=True)
class ServePoint:
    """One operating point on the throughput-vs-latency frontier."""

    qps: float
    batch_rows: float
    service_s: float
    utilization: float
    p50_ms: float
    p99_ms: float
    rows_per_s_capacity: float

    @property
    def saturated(self) -> bool:
        """True when offered load exceeds the replica pool's capacity."""
        return self.utilization >= 1.0

    def as_dict(self) -> dict:
        return {
            "qps": float(self.qps),
            "batch_rows": float(self.batch_rows),
            "service_s": float(self.service_s),
            "utilization": float(self.utilization),
            "p50_ms": float(self.p50_ms),
            "p99_ms": float(self.p99_ms),
            "rows_per_s_capacity": float(self.rows_per_s_capacity),
            "saturated": bool(self.saturated),
        }


@dataclass(frozen=True)
class ServeModel:
    """Analytical serving times for one machine + benchmark model."""

    machine: MachineSpec
    #: rows per request in the modeled workload
    rows_per_request: int = 1

    def __post_init__(self):
        if self.rows_per_request <= 0:
            raise ValueError(
                f"rows_per_request must be positive, got {self.rows_per_request}"
            )

    # -- building blocks ----------------------------------------------------
    def forward_per_sample_s(self, spec: BenchmarkSpec) -> float:
        """Forward-only math seconds per row (fwd ≈ 1/3 of fwd+bwd)."""
        return ComputeModel(self.machine).per_sample_seconds(spec) / 3.0

    def rpc_seconds(self, spec: BenchmarkSpec, rows: float) -> float:
        """Both RPC legs of one batch: features out, predictions back."""
        cost = CollectiveCostModel(self.machine.fabric)
        request_bytes = int(rows * spec.elements_per_sample * _ELEM_BYTES)
        result_elems = max(1, spec.num_classes or 1)
        result_bytes = int(rows * result_elems * _ELEM_BYTES)
        return cost.p2p(request_bytes) + cost.p2p(result_bytes)

    def batch_service_s(self, spec: BenchmarkSpec, rows: float) -> float:
        """One dispatched batch end-to-end on a replica."""
        if rows <= 0:
            raise ValueError(f"rows must be positive, got {rows}")
        return (
            0.5 * self.machine.step_overhead_s
            + rows * self.forward_per_sample_s(spec)
            + self.rpc_seconds(spec, rows)
        )

    def expected_batch_rows(
        self, spec: BenchmarkSpec, options: ServeOptions, qps: float
    ) -> float:
        """Rows the batcher assembles per dispatch at offered ``qps``.

        The triggering request plus whatever arrives during its
        assembly budget, capped at ``max_batch``: low traffic serves
        near-singleton batches (latency-optimal), high traffic fills
        ``max_batch`` (throughput-optimal) — the dynamic batcher's
        whole point, made analytic.
        """
        if qps < 0:
            raise ValueError(f"qps must be non-negative, got {qps}")
        arriving = qps * options.assemble_budget_s * self.rows_per_request
        return float(
            min(options.max_batch, max(self.rows_per_request, arriving))
        )

    def capacity_rows_per_s(
        self, spec: BenchmarkSpec, options: ServeOptions, qps: float
    ) -> float:
        """Replica-pool service capacity at the batch size ``qps`` induces."""
        rows = self.expected_batch_rows(spec, options, qps)
        return options.replicas * rows / self.batch_service_s(spec, rows)

    # -- operating points ---------------------------------------------------
    def point(
        self, spec: BenchmarkSpec, options: ServeOptions, qps: float
    ) -> ServePoint:
        """The modeled operating point at offered load ``qps``."""
        rows = self.expected_batch_rows(spec, options, qps)
        service = self.batch_service_s(spec, rows)
        capacity = options.replicas * rows / service
        offered_rows = qps * self.rows_per_request
        rho = offered_rows / capacity if capacity > 0 else float("inf")
        # mean assembly wait: half the fill time, never more than the budget
        fill_s = (
            (rows - self.rows_per_request) / max(offered_rows, 1e-12)
            if rows > self.rows_per_request
            else 0.0
        )
        assemble_mean = min(options.assemble_budget_s, fill_s / 2.0)
        # M/D/1 mean queue wait (deterministic service): rho s / 2(1-rho)
        if rho < 1.0:
            queue_mean = rho * service / (2.0 * (1.0 - rho))
        else:
            queue_mean = float("inf")
        p50 = assemble_mean + queue_mean + service
        p99 = options.assemble_budget_s + queue_mean * _P99_TAIL_FACTOR + service
        return ServePoint(
            qps=float(qps),
            batch_rows=rows,
            service_s=service,
            utilization=rho,
            p50_ms=p50 * 1000.0,
            p99_ms=p99 * 1000.0,
            rows_per_s_capacity=capacity,
        )

    def frontier(
        self,
        spec: BenchmarkSpec,
        options: ServeOptions,
        qps_grid: Optional[Sequence[float]] = None,
    ) -> List[ServePoint]:
        """Throughput-vs-latency curve over a load sweep.

        The default grid spans from near-idle to the saturation knee:
        log-spaced up to the zero-load capacity, where queueing blows
        the tail up — the curve benchmark reports plot.
        """
        if qps_grid is None:
            cap = self.capacity_rows_per_s(spec, options, 0.0)
            top = max(cap / self.rows_per_request, 1.0)
            qps_grid = np.geomspace(max(top / 256.0, 1e-3), top * 1.2, 17)
        return [self.point(spec, options, q) for q in qps_grid]

    def max_qps_within(
        self,
        spec: BenchmarkSpec,
        options: ServeOptions,
        p99_limit_ms: Optional[float] = None,
        tol: float = 1e-3,
    ) -> float:
        """Largest offered qps whose modeled p99 stays within the limit.

        ``p99_limit_ms`` defaults to the options' own deadline. Binary
        search over load; 0 when even an idle system misses the limit
        (service alone exceeds the deadline).
        """
        limit = (
            p99_limit_ms if p99_limit_ms is not None else options.deadline_ms
        )
        if self.point(spec, options, 0.0).p99_ms > limit:
            return 0.0
        lo = 0.0
        hi = self.capacity_rows_per_s(spec, options, 0.0) / self.rows_per_request
        while self.point(spec, options, hi).p99_ms <= limit:
            hi *= 2.0
            if hi > 1e12:
                return hi
        while hi - lo > tol * max(hi, 1.0):
            mid = (lo + hi) / 2.0
            if self.point(spec, options, mid).p99_ms <= limit:
                lo = mid
            else:
                hi = mid
        return lo

    def batching_speedup(
        self, spec: BenchmarkSpec, options: ServeOptions
    ) -> float:
        """Modeled sustainable-throughput ratio vs single-request serving.

        The deadline is held fixed; only ``max_batch`` collapses to 1
        in the baseline. This is the analytic counterpart of the
        functional benchmark's ≥3x dynamic-batching assertion: with the
        CANDLE models' overhead-dominated steps, amortizing the fixed
        per-dispatch cost across ``max_batch`` rows is worth multiples.
        """
        batched = self.max_qps_within(spec, options)
        single = self.max_qps_within(spec, options.evolve(max_batch=1))
        if single <= 0:
            return float("inf") if batched > 0 else 1.0
        return batched / single
