"""repro.sim — discrete-event simulation of paper-scale runs.

The functional runtime (:mod:`repro.core.parallel`) *executes* the
benchmarks at laptop scale; this package *times* them at paper scale
(1-3,072 workers on Summit, 1-384 nodes on Theta) by composing
calibrated cost models over the same bulk-synchronous phase structure:

    all ranks: load CSVs (I/O model x per-rank skew)
    → negotiate_broadcast (wait for the slowest loader)
    → broadcast initial weights (tree cost)
    → per epoch, per step: compute (compute model)
                           + negotiate + fused ring allreduce (fabric)
    → evaluate

Because ranks are bulk-synchronous, the event calendar collapses to a
vectorized per-rank clock — :class:`repro.sim.engine.PhaseSimulator`
keeps one clock per rank, advances phases, and emits per-rank power
profiles and Horovod timelines identical in structure to the functional
runtime's.

Calibration (:mod:`repro.sim.calibration`) anchors the free constants
to the paper's published scalars (Tables 2-4 and the quoted epoch
times); everything else — scaling curves, crossovers, improvement
percentages — is *derived* by the mechanism.
"""

from repro.sim.calibration import Calibration, DEFAULT_CALIBRATION, calibration_report
from repro.sim.computemodel import ComputeModel
from repro.sim.engine import PhaseSimulator
from repro.sim.faultmodel import (
    FailureModel,
    MtbfFailureProcess,
    ResilientRunSimulator,
    ResilientSimReport,
    checkpoint_write_seconds,
    daly_interval,
    expected_makespan,
    simulate_resilient_run,
    young_daly_interval,
)
from repro.sim.iomodel import (
    FileShape,
    IoModel,
    PREFETCH_EFFICIENCY,
    benchmark_files,
    exposed_load_seconds,
    prefetch_hidden_fraction,
    prefetch_timeline_seconds,
)
from repro.sim.powercap import (
    CappedSimReport,
    PowerCapPlan,
    PowerCapScheduler,
    peak_rank_watts,
    plan_power_cap,
    simulate_capped_run,
)
from repro.sim.report import SimRunReport, improvement_percent
from repro.sim.runner import ScaledRunSimulator, simulate_run
from repro.sim.servemodel import ServeModel, ServePoint

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "calibration_report",
    "ComputeModel",
    "PhaseSimulator",
    "IoModel",
    "FileShape",
    "benchmark_files",
    "PREFETCH_EFFICIENCY",
    "exposed_load_seconds",
    "prefetch_hidden_fraction",
    "prefetch_timeline_seconds",
    "SimRunReport",
    "improvement_percent",
    "ScaledRunSimulator",
    "simulate_run",
    "PowerCapPlan",
    "CappedSimReport",
    "PowerCapScheduler",
    "peak_rank_watts",
    "plan_power_cap",
    "simulate_capped_run",
    "MtbfFailureProcess",
    "FailureModel",
    "young_daly_interval",
    "daly_interval",
    "expected_makespan",
    "checkpoint_write_seconds",
    "ResilientSimReport",
    "ResilientRunSimulator",
    "simulate_resilient_run",
    "ServeModel",
    "ServePoint",
]
