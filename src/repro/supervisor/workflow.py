"""The Supervisor: schedule trials, collect results, survive failures.

The runner callable receives ``(config, trial_seed)`` and returns a
metrics dict — typically wrapping
:func:`repro.core.parallel.run_parallel_benchmark` (real training) or
:func:`repro.sim.simulate_run` (paper-scale cost). Failed trials are
recorded, not fatal: a hyperparameter search must outlive diverging or
OOM-ing configurations (the paper's P1B3 linear-scaling failures are
exactly such trials).
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Sequence

from repro.resilience.recovery import RetryPolicy
from repro.supervisor.db import ResultsDB, TrialRecord

__all__ = ["Supervisor"]

Runner = Callable[[Dict[str, Any], int], Dict[str, float]]


def _format_error(exc: BaseException) -> str:
    """``Type: message`` summary line followed by the full traceback.

    The summary line first keeps substring checks on the message cheap;
    the traceback below it is what makes a failed trial *debuggable*
    from the results DB alone (a search that ran overnight must not
    require a rerun just to learn where the exception came from).
    """
    summary = f"{type(exc).__name__}: {exc}"
    tb = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    ).rstrip()
    return f"{summary}\n{tb}"


class Supervisor:
    """Run a search strategy's configurations through a runner.

    ``max_retries`` (opt-in, default 0) re-runs a *failed* trial up to
    that many extra times with capped exponential backoff before
    recording it as failed — the standard defense against transient
    faults (a flaky node, an injected crash) wasting a whole search
    slot. Deterministic failures simply fail ``max_retries + 1`` times,
    so the default stays 0 to avoid tripling the cost of diverging
    configurations.
    """

    def __init__(
        self,
        runner: Runner,
        max_parallel: int = 1,
        base_seed: int = 0,
        verbose: bool = False,
        max_retries: int = 0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_parallel <= 0:
            raise ValueError(f"max_parallel must be positive, got {max_parallel}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        self.runner = runner
        self.max_parallel = int(max_parallel)
        self.base_seed = int(base_seed)
        self.verbose = bool(verbose)
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(max_retries=max_retries)
        )
        self._sleep = sleep

    def _run_one(self, trial_id: int, config: Dict[str, Any]) -> TrialRecord:
        t0 = time.perf_counter()
        record: TrialRecord
        for attempt in range(self.retry.max_retries + 1):
            try:
                metrics = self.runner(dict(config), self.base_seed + trial_id)
                if not isinstance(metrics, dict):
                    raise TypeError(
                        f"runner must return a metrics dict, got {type(metrics)!r}"
                    )
                record = TrialRecord(
                    trial_id=trial_id,
                    config=config,
                    metrics={k: float(v) for k, v in metrics.items()},
                    wall_seconds=time.perf_counter() - t0,
                    attempts=attempt + 1,
                )
                break
            except Exception as exc:  # noqa: BLE001 — searches must survive trials
                record = TrialRecord(
                    trial_id=trial_id,
                    config=config,
                    metrics={},
                    status="failed",
                    error=_format_error(exc),
                    wall_seconds=time.perf_counter() - t0,
                    attempts=attempt + 1,
                )
                if self.verbose:
                    traceback.print_exc()
                if attempt < self.retry.max_retries:
                    self._sleep(self.retry.delay_s(attempt))
        if self.verbose:
            print(f"[trial {trial_id}] {record.status} {config} -> {record.metrics}")
        return record

    def run(
        self,
        strategy,
        db: Optional[ResultsDB] = None,
    ) -> ResultsDB:
        """Evaluate every configuration of ``strategy``; returns the DB.

        ``strategy`` is anything with ``configurations()`` (GridSearch,
        RandomSearch, or a plain list wrapped by :meth:`run_configs`).
        """
        return self.run_configs(strategy.configurations(), db=db)

    def run_configs(
        self,
        configs: Sequence[Dict[str, Any]],
        db: Optional[ResultsDB] = None,
    ) -> ResultsDB:
        db = db if db is not None else ResultsDB()
        start = len(db)
        indexed = list(enumerate(configs, start=start))
        if self.max_parallel == 1:
            records = [self._run_one(i, c) for i, c in indexed]
        else:
            with ThreadPoolExecutor(max_workers=self.max_parallel) as pool:
                records = list(
                    pool.map(lambda ic: self._run_one(*ic), indexed)
                )
        for record in records:
            db.add(record)
        return db
