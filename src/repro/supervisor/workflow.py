"""The Supervisor: schedule trials, collect results, survive failures.

The runner callable receives ``(config, trial_seed)`` and returns a
metrics dict — typically wrapping
:func:`repro.core.parallel.run_parallel_benchmark` (real training) or
:func:`repro.sim.simulate_run` (paper-scale cost). Failed trials are
recorded, not fatal: a hyperparameter search must outlive diverging or
OOM-ing configurations (the paper's P1B3 linear-scaling failures are
exactly such trials).
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Sequence

from repro.supervisor.db import ResultsDB, TrialRecord

__all__ = ["Supervisor"]

Runner = Callable[[Dict[str, Any], int], Dict[str, float]]


class Supervisor:
    """Run a search strategy's configurations through a runner."""

    def __init__(
        self,
        runner: Runner,
        max_parallel: int = 1,
        base_seed: int = 0,
        verbose: bool = False,
    ):
        if max_parallel <= 0:
            raise ValueError(f"max_parallel must be positive, got {max_parallel}")
        self.runner = runner
        self.max_parallel = int(max_parallel)
        self.base_seed = int(base_seed)
        self.verbose = bool(verbose)

    def _run_one(self, trial_id: int, config: Dict[str, Any]) -> TrialRecord:
        t0 = time.perf_counter()
        try:
            metrics = self.runner(dict(config), self.base_seed + trial_id)
            if not isinstance(metrics, dict):
                raise TypeError(
                    f"runner must return a metrics dict, got {type(metrics)!r}"
                )
            record = TrialRecord(
                trial_id=trial_id,
                config=config,
                metrics={k: float(v) for k, v in metrics.items()},
                wall_seconds=time.perf_counter() - t0,
            )
        except Exception as exc:  # noqa: BLE001 — searches must survive trials
            record = TrialRecord(
                trial_id=trial_id,
                config=config,
                metrics={},
                status="failed",
                error=f"{type(exc).__name__}: {exc}",
                wall_seconds=time.perf_counter() - t0,
            )
            if self.verbose:
                traceback.print_exc()
        if self.verbose:
            print(f"[trial {trial_id}] {record.status} {config} -> {record.metrics}")
        return record

    def run(
        self,
        strategy,
        db: Optional[ResultsDB] = None,
    ) -> ResultsDB:
        """Evaluate every configuration of ``strategy``; returns the DB.

        ``strategy`` is anything with ``configurations()`` (GridSearch,
        RandomSearch, or a plain list wrapped by :meth:`run_configs`).
        """
        return self.run_configs(strategy.configurations(), db=db)

    def run_configs(
        self,
        configs: Sequence[Dict[str, Any]],
        db: Optional[ResultsDB] = None,
    ) -> ResultsDB:
        db = db if db is not None else ResultsDB()
        start = len(db)
        indexed = list(enumerate(configs, start=start))
        if self.max_parallel == 1:
            records = [self._run_one(i, c) for i, c in indexed]
        else:
            with ThreadPoolExecutor(max_workers=self.max_parallel) as pool:
                records = list(
                    pool.map(lambda ic: self._run_one(*ic), indexed)
                )
        for record in records:
            db.add(record)
        return db
