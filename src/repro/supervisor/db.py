"""Trial records and the results database (Figure 1b's database box)."""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["TrialRecord", "ResultsDB"]


@dataclass
class TrialRecord:
    """One evaluated configuration."""

    trial_id: int
    config: Dict[str, Any]
    metrics: Dict[str, float]
    status: str = "completed"  # completed | failed
    #: on failure, the full formatted traceback (first line is the
    #: ``Type: message`` summary, so substring checks on the message work)
    error: Optional[str] = None
    wall_seconds: float = 0.0
    #: how many times the runner was invoked for this trial (>1 only
    #: when the Supervisor's retry policy re-ran a failed attempt)
    attempts: int = 1
    timestamp: float = field(default_factory=time.time)

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"trial {self.trial_id} has no metric {name!r}; "
                f"known: {sorted(self.metrics)}"
            ) from None


class ResultsDB:
    """Append-only trial store with queries and JSON persistence."""

    def __init__(self):
        self._records: List[TrialRecord] = []

    def add(self, record: TrialRecord) -> None:
        if any(r.trial_id == record.trial_id for r in self._records):
            raise ValueError(f"duplicate trial_id {record.trial_id}")
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[TrialRecord]:
        return list(self._records)

    def completed(self) -> List[TrialRecord]:
        return [r for r in self._records if r.status == "completed"]

    def failed(self) -> List[TrialRecord]:
        return [r for r in self._records if r.status == "failed"]

    def best(self, metric: str, mode: str = "min") -> TrialRecord:
        """The best completed trial by a metric."""
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be min|max, got {mode!r}")
        done = [r for r in self.completed() if metric in r.metrics]
        if not done:
            raise ValueError(f"no completed trials with metric {metric!r}")
        key: Callable = lambda r: r.metrics[metric]  # noqa: E731
        return min(done, key=key) if mode == "min" else max(done, key=key)

    def top_k(self, metric: str, k: int = 5, mode: str = "min") -> List[TrialRecord]:
        done = [r for r in self.completed() if metric in r.metrics]
        done.sort(key=lambda r: r.metrics[metric], reverse=(mode == "max"))
        return done[:k]

    def as_rows(self) -> List[dict]:
        """Flat dicts for table rendering."""
        rows = []
        for r in sorted(self._records, key=lambda r: r.trial_id):
            row = {"trial": r.trial_id, "status": r.status}
            row.update({f"cfg_{k}": v for k, v in r.config.items()})
            row.update({k: round(v, 5) for k, v in r.metrics.items()})
            rows.append(row)
        return rows

    # -- persistence --------------------------------------------------------
    def save(self, path) -> None:
        with open(path, "w") as fh:
            json.dump([asdict(r) for r in self._records], fh, indent=1)

    @classmethod
    def load(cls, path) -> "ResultsDB":
        db = cls()
        with open(path) as fh:
            for raw in json.load(fh):
                db.add(TrialRecord(**raw))
        return db
