"""repro.supervisor — the CANDLE/Supervisor workflow framework.

Figure 1(b) of the paper places the "CANDLE supervisor and workflow
manager" above the benchmarks: "Each benchmark … implements a common
interface used by higher-level Python-based driver systems, such as the
CANDLE/Supervisor framework for hyperparameter optimization" (§1,
citing Wozniak et al.). This package reimplements that driver layer:

- :class:`ParameterSpace` — named hyperparameter domains (the paper's
  studied knobs: epochs, batch size, learning rate, plus anything else)
  with grid enumeration and seeded random sampling.
- :class:`Supervisor` — schedules trials over a bounded worker pool,
  evaluates each through a user-supplied runner (functional training or
  the simulator), and records everything in a :class:`ResultsDB`.
- :class:`ResultsDB` — queryable trial records with JSON persistence
  (the "database" box of Figure 1b).
"""

from repro.supervisor.db import ResultsDB, TrialRecord
from repro.supervisor.search import GridSearch, ParameterSpace, RandomSearch
from repro.supervisor.workflow import Supervisor

__all__ = [
    "ParameterSpace",
    "GridSearch",
    "RandomSearch",
    "Supervisor",
    "ResultsDB",
    "TrialRecord",
]
