"""Hyperparameter spaces and search strategies."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Sequence, Tuple, Union

import numpy as np

__all__ = ["ParameterSpace", "GridSearch", "RandomSearch"]

#: a domain is a list of choices, or ("uniform"|"loguniform", lo, hi)
Domain = Union[Sequence[Any], Tuple[str, float, float]]


class ParameterSpace:
    """Named hyperparameter domains.

    Discrete domains are given as sequences (``[16, 32, 64]``);
    continuous ones as ``("uniform", lo, hi)`` or
    ``("loguniform", lo, hi)`` — learning rates want the latter.
    """

    def __init__(self, **domains: Domain):
        if not domains:
            raise ValueError("a parameter space needs at least one domain")
        self.discrete: Dict[str, list] = {}
        self.continuous: Dict[str, tuple] = {}
        for name, domain in domains.items():
            if (
                isinstance(domain, tuple)
                and len(domain) == 3
                and domain[0] in ("uniform", "loguniform")
            ):
                kind, lo, hi = domain
                if not lo < hi:
                    raise ValueError(f"{name}: need lo < hi, got {lo} >= {hi}")
                if kind == "loguniform" and lo <= 0:
                    raise ValueError(f"{name}: loguniform needs lo > 0")
                self.continuous[name] = (kind, float(lo), float(hi))
            elif isinstance(domain, (list, tuple, range)):
                values = list(domain)
                if not values:
                    raise ValueError(f"{name}: empty choice list")
                self.discrete[name] = values
            else:
                raise ValueError(
                    f"{name}: domain must be a sequence or (kind, lo, hi) tuple"
                )

    @property
    def names(self) -> List[str]:
        return list(self.discrete) + list(self.continuous)

    def grid_size(self) -> int:
        """Number of grid points (continuous domains are not grid-able)."""
        if self.continuous:
            raise ValueError(
                f"grid search needs discrete domains only; "
                f"continuous: {sorted(self.continuous)}"
            )
        size = 1
        for values in self.discrete.values():
            size *= len(values)
        return size

    def grid(self) -> Iterator[Dict[str, Any]]:
        """Every combination of the discrete domains, in stable order."""
        self.grid_size()  # validates
        names = list(self.discrete)
        for combo in itertools.product(*(self.discrete[n] for n in names)):
            yield dict(zip(names, combo))

    def sample(self, rng: np.random.Generator) -> Dict[str, Any]:
        """One random configuration across all domains."""
        config: Dict[str, Any] = {}
        for name, values in self.discrete.items():
            config[name] = values[int(rng.integers(0, len(values)))]
        for name, (kind, lo, hi) in self.continuous.items():
            if kind == "uniform":
                config[name] = float(rng.uniform(lo, hi))
            else:
                config[name] = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        return config


class GridSearch:
    """Exhaustive enumeration of a discrete space."""

    def __init__(self, space: ParameterSpace):
        self.space = space

    def configurations(self) -> List[Dict[str, Any]]:
        return list(self.space.grid())


class RandomSearch:
    """Seeded random sampling; duplicate configs are skipped."""

    def __init__(self, space: ParameterSpace, n_trials: int, seed: int = 0):
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        self.space = space
        self.n_trials = int(n_trials)
        self.seed = seed

    def configurations(self) -> List[Dict[str, Any]]:
        rng = np.random.default_rng(self.seed)
        out: List[Dict[str, Any]] = []
        seen = set()
        attempts = 0
        while len(out) < self.n_trials and attempts < self.n_trials * 50:
            config = self.space.sample(rng)
            key = tuple(sorted((k, repr(v)) for k, v in config.items()))
            attempts += 1
            if key in seen:
                continue
            seen.add(key)
            out.append(config)
        return out
