"""CSV writing — used by the synthetic CANDLE workload generators.

The paper's benchmark files are headerless numeric CSVs (NT3's first
column is the 0|1 tumor label, the rest are FPKM-UQ floats). The writer
formats column-by-column with vectorized ``np.char``-free string
conversion and writes in large blocks.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence

import numpy as np

__all__ = ["write_csv", "format_matrix"]

_ROWS_PER_BLOCK = 4096


def _format_column(col: np.ndarray, float_fmt: str) -> np.ndarray:
    """Stringify one column (ints exactly, floats per ``float_fmt``)."""
    if np.issubdtype(col.dtype, np.integer):
        return col.astype(str)
    if np.issubdtype(col.dtype, np.floating):
        # %g-style via vectorized formatting
        return np.array([float_fmt % v for v in col])
    return col.astype(str)


def format_matrix(matrix: np.ndarray, float_fmt: str = "%.6g") -> str:
    """Render a 2-D array as CSV text (no trailing newline)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got {matrix.ndim}-D")
    cols = [_format_column(matrix[:, j], float_fmt) for j in range(matrix.shape[1])]
    grid = np.stack(cols, axis=1)
    return "\n".join(",".join(row) for row in grid)


def write_csv(
    path,
    matrix: np.ndarray,
    header: Optional[Sequence[str]] = None,
    float_fmt: str = "%.6g",
) -> int:
    """Write ``matrix`` to ``path`` as CSV; returns bytes written.

    Blocks of rows are formatted and flushed together so generating the
    multi-hundred-MB-shaped files stays I/O-bound, not Python-bound.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got {matrix.ndim}-D")
    total = 0
    owns = not hasattr(path, "write")
    fh: io.TextIOBase = open(path, "w", newline="") if owns else path
    try:
        if header is not None:
            if len(header) != matrix.shape[1]:
                raise ValueError(
                    f"header has {len(header)} names for {matrix.shape[1]} columns"
                )
            line = ",".join(str(h) for h in header) + "\n"
            fh.write(line)
            total += len(line)
        for start in range(0, matrix.shape[0], _ROWS_PER_BLOCK):
            block = format_matrix(matrix[start : start + _ROWS_PER_BLOCK], float_fmt)
            fh.write(block + "\n")
            total += len(block) + 1
    finally:
        if owns:
            fh.close()
    return total
