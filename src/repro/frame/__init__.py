"""repro.frame — a from-scratch CSV/DataFrame engine (the pandas substitute).

The paper's headline optimization is entirely about ``pandas.read_csv``:
the CANDLE benchmarks load 55 MB-771 MB CSV files with the default
``low_memory=True`` parser, which processes the file in small internal
chunks with per-chunk dtype inference — slow for the wide-row genomics
files (60,483 columns). The fix is chunked reading with
``low_memory=False`` (large chunks, bulk conversion), giving 3-7x.

This package reimplements both code paths honestly so the speedup — and
its *shape* (large for wide-row files, negligible for the narrow-row
P1B3 file) — emerges from the same mechanism at any scale:

- :func:`repro.frame.read_csv` — both ``low_memory`` paths, ``chunksize``
  iteration, header handling.
- :class:`repro.frame.DataFrame` — a minimal column-oriented frame.
- :func:`repro.frame.concat` — row-wise concatenation (the paper's
  optimized loader ends with ``pd.concat(chunks, axis=0)``).
- :class:`repro.frame.PartitionedCSVReader` — the Dask-DataFrame-like
  comparator the paper also measured ("better than the original method
  but worse than data loading in chunks with low_memory=False").
- :func:`repro.frame.write_csv` — used by the synthetic workload
  generators to produce benchmark files.
"""

from repro.frame.dataframe import DataFrame, concat, mmap_base, resident_nbytes
from repro.frame.csv import (
    CSVChunkIterator,
    read_csv,
    vectorized_parser,
    vectorized_parser_enabled,
)
from repro.frame.dask_like import PartitionedCSVReader, read_csv_partitioned
from repro.frame.dtypes import infer_column_dtype, parse_value
from repro.frame.writer import write_csv

__all__ = [
    "DataFrame",
    "concat",
    "read_csv",
    "CSVChunkIterator",
    "PartitionedCSVReader",
    "read_csv_partitioned",
    "infer_column_dtype",
    "parse_value",
    "write_csv",
    "vectorized_parser",
    "vectorized_parser_enabled",
    "mmap_base",
    "resident_nbytes",
]
