"""A minimal column-oriented DataFrame.

Just enough of the pandas surface for the CANDLE benchmarks: column
access, ``.values``, row slicing, ``concat`` (the optimized loader's
final step), ``astype``, and ``describe``-style introspection. Columns
are NumPy arrays; there is no index object — rows are positional,
matching the ``ignore_index=True`` concat the paper's fix uses.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.frame.dtypes import cast_to, dtype_of_array, promote

__all__ = ["DataFrame", "concat", "mmap_base", "resident_nbytes"]


def mmap_base(arr) -> Optional[np.memmap]:
    """The ``np.memmap`` ultimately backing ``arr``, or None.

    Column views taken off a memory-mapped cache block (slices, 2-D
    column selections, sub-frame shards) keep the mapping alive through
    their ``base`` chain; this walks the chain so accounting code can
    tell "bytes in shared page cache" from "bytes this process owns".
    """
    node = arr
    while isinstance(node, np.ndarray):
        if isinstance(node, np.memmap):
            return node
        node = node.base
    return None


def resident_nbytes(frame: "DataFrame") -> int:
    """Bytes of column storage this process *owns* (heap, not page cache).

    Memory-mapped columns count zero — their pages live in the shared
    OS page cache, so N ranks of a node mapping the same cache block
    pay for it once. In-memory columns are charged by their owning base
    buffer, deduplicated, so views of one block aren't double-counted.
    This is the per-rank number the zero-copy ingest path is judged by
    (``memory_usage`` stays the logical column-bytes total).
    """
    seen: set[int] = set()
    total = 0
    for arr in frame._columns.values():
        if mmap_base(arr) is not None:
            continue
        owner = arr
        while isinstance(owner.base, np.ndarray):
            owner = owner.base
        if id(owner) not in seen:
            seen.add(id(owner))
            total += owner.nbytes
    return total


class DataFrame:
    """Column-oriented frame: ordered mapping of name → 1-D array."""

    def __init__(self, data: Mapping[object, np.ndarray] | None = None):
        self._columns: dict = {}
        nrows = None
        for name, values in (data or {}).items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got {arr.ndim}-D")
            if nrows is None:
                nrows = len(arr)
            elif len(arr) != nrows:
                raise ValueError(
                    f"column {name!r} has {len(arr)} rows, expected {nrows}"
                )
            self._columns[name] = arr
        self._nrows = nrows or 0

    # -- construction helpers ---------------------------------------------
    @classmethod
    def from_arrays(cls, arrays: Sequence[np.ndarray], names: Sequence | None = None) -> "DataFrame":
        """Build from a list of column arrays with optional names."""
        names = list(names) if names is not None else list(range(len(arrays)))
        if len(names) != len(arrays):
            raise ValueError("names and arrays must have equal length")
        return cls(dict(zip(names, arrays)))

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, names: Sequence | None = None) -> "DataFrame":
        """Build from a 2-D array, one column per matrix column."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got {matrix.ndim}-D")
        names = list(names) if names is not None else list(range(matrix.shape[1]))
        return cls({n: matrix[:, j].copy() for j, n in enumerate(names)})

    # -- basic protocol ------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self._nrows, len(self._columns))

    @property
    def columns(self) -> list:
        return list(self._columns)

    @property
    def dtypes(self) -> dict:
        return {n: dtype_of_array(a) for n, a in self._columns.items()}

    def __len__(self) -> int:
        return self._nrows

    def __contains__(self, name) -> bool:
        return name in self._columns

    def __getitem__(self, key):
        """Column by name, or a sub-frame for a list of names."""
        if isinstance(key, list):
            missing = [k for k in key if k not in self._columns]
            if missing:
                raise KeyError(f"columns not found: {missing}")
            return DataFrame({k: self._columns[k] for k in key})
        try:
            return self._columns[key]
        except KeyError:
            raise KeyError(f"column {key!r} not found") from None

    def __setitem__(self, name, values) -> None:
        arr = np.asarray(values)
        if arr.ndim == 0:
            arr = np.full(self._nrows, values)
        if self._columns and len(arr) != self._nrows:
            raise ValueError(
                f"column length {len(arr)} != frame length {self._nrows}"
            )
        if not self._columns:
            self._nrows = len(arr)
        self._columns[name] = arr

    # -- selection -------------------------------------------------------------
    def iloc(self, rows) -> "DataFrame":
        """Positional row selection (slice, index array, or boolean mask)."""
        return DataFrame({n: a[rows] for n, a in self._columns.items()})

    def head(self, n: int = 5) -> "DataFrame":
        return self.iloc(slice(0, n))

    def drop(self, columns: Iterable) -> "DataFrame":
        """Return a frame without the given columns."""
        drop = set(columns if not isinstance(columns, (str, int)) else [columns])
        missing = drop - set(self._columns)
        if missing:
            raise KeyError(f"columns not found: {sorted(missing, key=str)}")
        return DataFrame({n: a for n, a in self._columns.items() if n not in drop})

    # -- conversion -------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """2-D array; columns are promoted to a common dtype."""
        return self.to_numpy()

    def to_numpy(self, dtype=None) -> np.ndarray:
        if not self._columns:
            return np.empty((0, 0))
        if dtype is None:
            common = "int64"
            for a in self._columns.values():
                common = promote(common, dtype_of_array(a))
            cols = [cast_to(a, common) for a in self._columns.values()]
        else:
            cols = [a.astype(dtype) for a in self._columns.values()]
        return np.column_stack(cols)

    def astype(self, dtype) -> "DataFrame":
        """Cast every column to a NumPy dtype."""
        return DataFrame({n: a.astype(dtype) for n, a in self._columns.items()})

    def memory_usage(self) -> int:
        """Total bytes held by column buffers."""
        return int(sum(a.nbytes for a in self._columns.values()))

    def resident_nbytes(self) -> int:
        """Owned (non-memory-mapped) bytes; see :func:`resident_nbytes`."""
        return resident_nbytes(self)

    def to_csv(self, path, header: bool = False, float_fmt: str = "%.6g") -> int:
        """Write the frame to a CSV file; returns bytes written."""
        from repro.frame.writer import write_csv

        return write_csv(
            path,
            self.to_numpy(),
            header=[str(c) for c in self.columns] if header else None,
            float_fmt=float_fmt,
        )

    # -- statistics ----------------------------------------------------------
    def describe(self) -> "DataFrame":
        """Per-numeric-column summary: count, mean, std, min, max.

        Returned as a frame whose first column names the statistic.
        """
        numeric = [
            n for n, a in self._columns.items() if a.dtype.kind in "iuf"
        ]
        if not numeric:
            raise ValueError("no numeric columns to describe")
        stats = {"stat": np.array(["count", "mean", "std", "min", "max"], dtype=object)}
        for n in numeric:
            col = self._columns[n].astype(np.float64)
            finite = col[np.isfinite(col)]
            if finite.size:
                values = [
                    float(finite.size),
                    float(finite.mean()),
                    float(finite.std()),
                    float(finite.min()),
                    float(finite.max()),
                ]
            else:
                values = [0.0, np.nan, np.nan, np.nan, np.nan]
            stats[n] = np.array(values)
        return DataFrame(stats)

    def isna(self) -> "DataFrame":
        """Boolean mask of missing values (NaN in float/object columns)."""
        out = {}
        for n, a in self._columns.items():
            if a.dtype.kind == "f":
                out[n] = np.isnan(a)
            elif a.dtype == object:
                out[n] = np.array(
                    [isinstance(v, float) and np.isnan(v) for v in a]
                )
            else:
                out[n] = np.zeros(len(a), dtype=bool)
        return DataFrame(out)

    def fillna(self, value: float) -> "DataFrame":
        """Replace NaNs with ``value`` (float and object columns)."""
        out = {}
        for n, a in self._columns.items():
            if a.dtype.kind == "f":
                col = a.copy()
                col[np.isnan(col)] = value
                out[n] = col
            elif a.dtype == object:
                out[n] = np.array(
                    [
                        value if isinstance(v, float) and np.isnan(v) else v
                        for v in a
                    ],
                    dtype=object,
                )
            else:
                out[n] = a
        return DataFrame(out)

    def dropna(self) -> "DataFrame":
        """Drop rows containing any missing value."""
        mask = ~np.any(self.isna().to_numpy(dtype=bool), axis=1)
        return self.iloc(mask)

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> "DataFrame":
        """``n`` rows drawn without replacement (seeded via ``rng``)."""
        if not 0 < n <= self._nrows:
            raise ValueError(f"cannot sample {n} rows from {self._nrows}")
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(self._nrows, size=n, replace=False)
        return self.iloc(np.sort(idx))

    def equals(self, other: "DataFrame") -> bool:
        """Exact equality of column names, order, and values (NaN == NaN)."""
        if not isinstance(other, DataFrame):
            return False
        if self.columns != other.columns or self.shape != other.shape:
            return False
        for n in self._columns:
            a, b = self._columns[n], other._columns[n]
            if a.dtype == object or b.dtype == object:
                if not all(_eq(x, y) for x, y in zip(a, b)):
                    return False
            elif not np.array_equal(a, b, equal_nan=True):
                return False
        return True

    def __repr__(self):
        return f"<DataFrame {self._nrows} rows x {len(self._columns)} cols>"


def _eq(x, y) -> bool:
    if isinstance(x, float) and isinstance(y, float):
        return x == y or (np.isnan(x) and np.isnan(y))
    return x == y


def concat(frames: Sequence[DataFrame], axis: int = 0, ignore_index: bool = True) -> DataFrame:
    """Row-wise concatenation of frames with identical columns.

    This is the tail of the paper's optimized loader:
    ``pd.concat(chunks, axis=0, ignore_index=True)``. Column dtypes are
    promoted on the int64 < float64 < object lattice when chunks
    disagree (the source of pandas's DtypeWarning with low_memory).
    """
    if axis != 0:
        raise NotImplementedError("only axis=0 concatenation is supported")
    frames = list(frames)
    if not frames:
        raise ValueError("cannot concat an empty list of frames")
    if len(frames) == 1:
        return frames[0]
    first_cols = frames[0].columns
    for f in frames[1:]:
        if f.columns != first_cols:
            raise ValueError("all frames must share the same columns, in order")
    out: dict = {}
    for name in first_cols:
        parts = [f[name] for f in frames]
        common = "int64"
        for p in parts:
            common = promote(common, dtype_of_array(p))
        out[name] = np.concatenate([cast_to(p, common) for p in parts])
    return DataFrame(out)
