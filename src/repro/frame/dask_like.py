"""A Dask-DataFrame-like partitioned CSV reader.

The paper also measured Dask: "the performance is better than the
original method but worse than the data loading in chunks with
low_memory=False." This reader reproduces that middle ground honestly:
the file is split into byte-range partitions that are parsed
concurrently by a thread pool — but each partition goes through a
partition-granular parse that still pays per-partition inference and a
final multi-partition concat, so it lands between the two pandas paths.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from repro.frame.csv import _parse_chunk_fast, _parse_chunk_slow
from repro.frame.dataframe import DataFrame, concat

__all__ = ["PartitionedCSVReader", "read_csv_partitioned"]

_DEFAULT_BLOCKSIZE = 8 << 20


def _partition_offsets(path: str, blocksize: int) -> list[tuple[int, int]]:
    """Byte ranges aligned to line boundaries (Dask's blocksize split)."""
    size = os.path.getsize(path)
    if size == 0:
        return []
    offsets = []
    with open(path, "rb") as fh:
        start = 0
        while start < size:
            end = min(start + blocksize, size)
            if end < size:
                fh.seek(end)
                fh.readline()  # extend to the next newline
                end = fh.tell()
            offsets.append((start, end))
            start = end
    return offsets


class PartitionedCSVReader:
    """Reads a headerless numeric CSV as concurrent byte-range partitions."""

    def __init__(
        self,
        path: str,
        blocksize: int = _DEFAULT_BLOCKSIZE,
        num_workers: int = 4,
        names: Optional[Sequence] = None,
        engine: str = "mixed",
    ):
        if blocksize <= 0:
            raise ValueError(f"blocksize must be positive, got {blocksize}")
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if engine not in ("fast", "slow", "mixed"):
            raise ValueError(f"engine must be fast|slow|mixed, got {engine!r}")
        self.path = str(path)
        self.blocksize = int(blocksize)
        self.num_workers = int(num_workers)
        self.names = list(names) if names is not None else None
        self.engine = engine

    def _read_partition(self, span: tuple[int, int], names: Sequence) -> DataFrame:
        start, end = span
        with open(self.path, "rb") as fh:
            fh.seek(start)
            raw = fh.read(end - start)
        lines = [ln for ln in raw.decode().split("\n") if ln]
        if self.engine == "slow":
            return _parse_chunk_slow(lines, names)
        if self.engine == "fast":
            return _parse_chunk_fast(lines, names)
        # "mixed" models Dask-on-pandas defaults: a fast tokenizer but a
        # per-partition object-safe inference pass over a row sample.
        sample = lines[: max(1, len(lines) // 8)]
        _parse_chunk_slow(sample, names)
        return _parse_chunk_fast(lines, names)

    def read(self) -> DataFrame:
        """Read the whole file via partition fan-out + final concat."""
        spans = _partition_offsets(self.path, self.blocksize)
        if not spans:
            raise ValueError(f"empty CSV file: {self.path}")
        if self.names is None:
            with open(self.path, "r") as fh:
                first = fh.readline().rstrip("\n")
            names: Sequence = list(range(first.count(",") + 1))
        else:
            names = self.names
        if len(spans) == 1 or self.num_workers == 1:
            parts = [self._read_partition(s, names) for s in spans]
        else:
            with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
                parts = list(pool.map(lambda s: self._read_partition(s, names), spans))
        if len(parts) == 1:
            return parts[0]
        return concat(parts, axis=0, ignore_index=True)


def read_csv_partitioned(
    path,
    blocksize: int = _DEFAULT_BLOCKSIZE,
    num_workers: int = 4,
    names: Optional[Sequence] = None,
    engine: str = "mixed",
) -> DataFrame:
    """Deprecated convenience wrapper: Dask-like ``dd.read_csv(...).compute()``.

    Use ``DataSource(path).load(LoaderConfig(method="dask"))`` from
    :mod:`repro.ingest` (or :class:`PartitionedCSVReader` directly).
    """
    warnings.warn(
        "read_csv_partitioned is deprecated; use repro.ingest.DataSource "
        "with LoaderConfig(method='dask') or PartitionedCSVReader directly",
        DeprecationWarning,
        stacklevel=2,
    )
    return PartitionedCSVReader(
        path, blocksize=blocksize, num_workers=num_workers, names=names, engine=engine
    ).read()
