"""CSV reading: both ``low_memory`` code paths, faithfully re-created.

The paper's bottleneck and fix (§5) live here.

**Slow path** (``low_memory=True``, the pandas default the benchmarks
shipped with): the file is processed in *small internal chunks* bounded
by a byte budget. Every chunk is tokenized row by row, every column's
dtype is re-inferred from its tokens, and every value is converted at
Python speed through the object-safe parser in
:mod:`repro.frame.dtypes`. For wide-row files (NT3's 60,483 columns ⇒
~0.5 MB per row) the byte budget degenerates to a handful of rows per
chunk, so the per-chunk/per-column overhead is paid per-value — which is
exactly why the paper measured 81.72 s for the 597 MB NT3 training file.

**Fast path** (``low_memory=False``): each (large) chunk is converted in
bulk — one C-level ``str.split`` pass over the text and one C-level
``np.asarray(..., float64)`` per chunk — falling back to per-column
conversion only if the bulk cast fails. Combined with a user
``chunksize`` (the paper uses 16 MB chunks matching Spectrum Scale's
largest I/O block) this is the paper's optimized loader.

Both paths produce identical frames; the test suite asserts so.
"""

from __future__ import annotations

import io
import threading
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.frame.dataframe import DataFrame, concat
from repro.frame.dtypes import (
    MISSING_TOKENS,
    dtype_of_array,
    infer_column_dtype,
    parse_column,
    promote,
)

__all__ = [
    "read_csv",
    "CSVChunkIterator",
    "DtypeWarning",
    "LOW_MEMORY_CHUNK_BYTES",
    "ParseStats",
    "LAST_PARSE_STATS",
    "vectorized_parser",
    "vectorized_parser_enabled",
]

#: Byte budget for one internal chunk on the slow path. pandas uses
#: low-single-digit MB; we keep the same order so the rows-per-chunk
#: degeneration on wide files happens at the same place.
LOW_MEMORY_CHUNK_BYTES = 1 << 20

#: Read granularity for streaming lines off disk.
_READ_BLOCK_BYTES = 4 << 20


class DtypeWarning(UserWarning):
    """Columns had mixed dtypes across internal chunks (pandas analog)."""


class ParseStats:
    """Transient-memory accounting for the most recent parse.

    The *reason* pandas defaults to ``low_memory=True`` is peak
    transient memory: the engine tokenizes one internal chunk at a time,
    and token lists cost several times the raw bytes. These counters
    record the largest single-chunk token footprint each engine touched,
    so the memory-vs-speed trade the paper's fix makes (big chunks =>
    fast but hungrier) is observable, not folklore.
    """

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.peak_chunk_tokens = 0
        self.chunks_parsed = 0

    def record_chunk(self, ntokens: int) -> None:
        self.chunks_parsed += 1
        if ntokens > self.peak_chunk_tokens:
            self.peak_chunk_tokens = ntokens

    def peak_transient_bytes(self, bytes_per_token: int = 56) -> int:
        """Approximate peak token-buffer footprint (PyObject overhead)."""
        return self.peak_chunk_tokens * bytes_per_token

    def snapshot(self) -> "ParseStats":
        """Detached copy (safe to hand across threads/processes)."""
        out = ParseStats()
        out.peak_chunk_tokens = self.peak_chunk_tokens
        out.chunks_parsed = self.chunks_parsed
        return out

    def merge(self, other: "ParseStats") -> None:
        """Fold another engine's counters in (parallel span workers)."""
        self.chunks_parsed += other.chunks_parsed
        if other.peak_chunk_tokens > self.peak_chunk_tokens:
            self.peak_chunk_tokens = other.peak_chunk_tokens

    def as_dict(self) -> dict[str, int]:
        return {
            "peak_chunk_tokens": self.peak_chunk_tokens,
            "chunks_parsed": self.chunks_parsed,
        }

    def __repr__(self):
        return (
            f"<ParseStats chunks={self.chunks_parsed} "
            f"peak_tokens={self.peak_chunk_tokens}>"
        )


class _ThreadLocalParseStats(threading.local):
    """Per-thread :class:`ParseStats` behind the legacy module global.

    ``LAST_PARSE_STATS`` used to be one shared mutable object, which the
    parallel span workers in :mod:`repro.ingest.parallel` (and the
    thread pool in :mod:`repro.frame.dask_like`) would corrupt — peaks
    and chunk counts from concurrent parses interleaving arbitrarily.
    Each thread now accumulates into its own counters; callers that need
    a cross-worker aggregate merge per-worker snapshots explicitly
    (see ``DataFrame.parse_stats`` / :class:`repro.ingest.LoadResult`).
    """

    def __init__(self):
        self._stats = ParseStats()

    @property
    def peak_chunk_tokens(self) -> int:
        return self._stats.peak_chunk_tokens

    @property
    def chunks_parsed(self) -> int:
        return self._stats.chunks_parsed

    def reset(self) -> None:
        self._stats.reset()

    def record_chunk(self, ntokens: int) -> None:
        self._stats.record_chunk(ntokens)

    def peak_transient_bytes(self, bytes_per_token: int = 56) -> int:
        return self._stats.peak_transient_bytes(bytes_per_token)

    def snapshot(self) -> ParseStats:
        return self._stats.snapshot()


#: stats of the calling thread's most recent read_csv call (reset per
#: call; one independent instance per thread)
LAST_PARSE_STATS = _ThreadLocalParseStats()


# ---------------------------------------------------------------------------
# line streaming
# ---------------------------------------------------------------------------

class _LineStream:
    """Stream lines from a text file in large blocks.

    Reading block-wise and splitting keeps per-line Python overhead to a
    single list traversal — the framing cost both parser paths share.
    """

    def __init__(self, fh: io.TextIOBase, comment: Optional[str] = None):
        self._fh = fh
        self._buffer: list[str] = []
        self._pos = 0
        self._tail = ""
        self._eof = False
        self._comment = comment

    def _fill(self) -> None:
        while self._pos >= len(self._buffer) and not self._eof:
            block = self._fh.read(_READ_BLOCK_BYTES)
            if not block:
                self._eof = True
                if self._tail:
                    self._buffer = [self._tail]
                    self._tail = ""
                    self._pos = 0
                return
            text = (self._tail + block).replace("\r\n", "\n")
            lines = text.split("\n")
            self._tail = lines.pop()
            self._buffer = lines
            self._pos = 0

    def next_line(self) -> Optional[str]:
        """Next line, or None at EOF. Skips blank lines."""
        while True:
            self._fill()
            if self._pos >= len(self._buffer):
                return None
            line = self._buffer[self._pos]
            self._pos += 1
            if line and not (self._comment and line.startswith(self._comment)):
                return line

    def next_lines(self, n: int) -> list[str]:
        """Up to ``n`` further non-blank lines."""
        out: list[str] = []
        while len(out) < n:
            line = self.next_line()
            if line is None:
                break
            out.append(line)
        return out

    def skip(self, n: int) -> None:
        """Discard the next ``n`` lines (read_csv's skiprows)."""
        for _ in range(n):
            if self.next_line() is None:
                break

    def push_back(self, line: str) -> None:
        """Return a line to the front of the stream (header peeking)."""
        self._buffer = [line] + self._buffer[self._pos :]
        self._pos = 0


# ---------------------------------------------------------------------------
# chunk parsers
# ---------------------------------------------------------------------------

def _tokenize(lines: list[str], ncols: int, sep: str = ",") -> list[str]:
    """One C-level pass: join rows and split on the delimiter."""
    flat = sep.join(lines).split(sep)
    LAST_PARSE_STATS.record_chunk(len(flat))
    if len(flat) != ncols * len(lines):
        raise ValueError(
            f"ragged CSV chunk: expected {ncols} columns, "
            f"got {len(flat) / len(lines):.2f} on average"
        )
    return flat


def _parse_chunk_fast(lines: list[str], names: Sequence, sep: str = ",") -> DataFrame:
    """Bulk conversion: one split pass + one C-level float cast.

    This is the ``low_memory=False`` engine. The all-numeric common case
    converts the entire chunk with a single vectorized cast; integer
    narrowing is one matrix-wide comparison, not a per-column loop.
    """
    ncols = len(names)
    flat = _tokenize(lines, ncols, sep)
    try:
        matrix = np.asarray(flat, dtype=np.float64).reshape(len(lines), ncols)
    except ValueError:
        if _VECTORIZED:
            frame = _parse_matrix_with_missing(flat, len(lines), names)
            if frame is not None:
                return frame
        return _parse_columns_bulk(flat, len(lines), names)
    int_cols = _integral_columns(matrix)
    cols = {}
    for j, name in enumerate(names):
        col = matrix[:, j]
        cols[name] = col.astype(np.int64) if int_cols[j] else col
    return DataFrame(cols)


def _integral_columns(matrix: np.ndarray) -> np.ndarray:
    """Boolean mask of columns that narrow exactly to int64.

    A cheap head-sample pre-filter rejects float columns without a full
    pass; only surviving candidates are verified in full.
    """
    head = matrix[: min(matrix.shape[0], 16)]
    with np.errstate(invalid="ignore"):
        cand = np.logical_and.reduce(head == np.trunc(head), axis=0)
    int_cols = np.zeros(matrix.shape[1], dtype=bool)
    idx = np.nonzero(cand)[0]
    if idx.size:
        sub = matrix[:, idx]
        with np.errstate(invalid="ignore"):
            ok = np.logical_and.reduce(
                (sub == np.trunc(sub)) & (np.abs(sub) < 2.0**62), axis=0
            )
        int_cols[idx[ok]] = True
    return int_cols


#: toggle for the vectorized column-conversion fast path (see
#: :func:`vectorized_parser`); the sampled-inference reference engine
#: stays available for bit-identity checks and A/B microbenchmarks
_VECTORIZED = True


def vectorized_parser_enabled() -> bool:
    """Whether column conversion uses the vectorized dispatch ladder."""
    return _VECTORIZED


@contextmanager
def vectorized_parser(enabled: bool):
    """Scoped switch between the vectorized fast path and the sampled
    reference engine (both produce bit-identical frames)."""
    global _VECTORIZED
    previous, _VECTORIZED = _VECTORIZED, bool(enabled)
    try:
        yield
    finally:
        _VECTORIZED = previous


def _substitute_missing(
    toks: list[str],
) -> tuple[Optional[list[str]], list[int]]:
    """A copy of ``toks`` with NA spellings replaced by ``"nan"``.

    One set-membership probe per token — an order of magnitude cheaper
    than building a NumPy unicode array for an ``np.isin`` pass, and the
    resulting *list* of native ``str`` feeds NumPy's fast list→float64
    cast directly (casting *from a U-dtype array* goes through a slow
    per-element scalar path). Returns ``(substituted, na_indices)``,
    with ``substituted=None`` when no NA spelling occurs, so callers can
    tell "cleanly numeric" from "needs substitution".
    """
    na_idx = [i for i, tok in enumerate(toks) if tok in MISSING_TOKENS]
    if not na_idx:
        return None, na_idx
    sub = list(toks)
    for i in na_idx:
        sub[i] = "nan"
    return sub, na_idx


def _cast_float_with_missing(toks: list[str]) -> Optional[np.ndarray]:
    """Bulk float conversion after substituting missing-value spellings.

    One Python-level substitution pass plus one C-level bulk cast —
    replacing the per-token ``float()``-with-fallback loop for the
    common sparse-NaN genomics columns. Returns None when a token is
    neither numeric nor a known missing spelling (the caller falls back
    to the object-safe parser).
    """
    sub, _ = _substitute_missing(toks)
    if sub is None:
        return None
    try:
        return np.asarray(sub, dtype=np.float64)
    except ValueError:
        return None


def _parse_matrix_with_missing(
    flat: list[str], nrows: int, names: Sequence
) -> Optional[DataFrame]:
    """Chunk-level NA-substituted bulk cast — the vectorized fast path.

    When the plain all-numeric matrix cast fails, the most common reason
    in the genomics files is sparse NA spellings. This retries the cast
    *once for the whole chunk* (one substitution pass over the flat
    token list, one bulk float64 cast) instead of dropping to per-column
    work — the per-token ``float()`` loop the reference engine pays, or
    the per-column array builds whose fixed cost defeats vectorization
    on wide-and-short chunks.

    Column dtypes reproduce the reference engine exactly. NA-free
    integral columns re-cast from their *tokens* (``np.int64``) so
    digit strings beyond 2**53 don't take a float round-trip, matching
    the reference's int-inferred path, with its fallbacks preserved:
    float-spelled integrals narrow from the float values and
    out-of-range ints drop to the sampled engine (which defines the
    overflow semantics). Returns None when the chunk has no NA
    spellings or has genuinely non-numeric tokens — the per-column
    ladder owns those cases.
    """
    ncols = len(names)
    sub, na_idx = _substitute_missing(flat)
    if sub is None:
        return None
    try:
        matrix = np.asarray(sub, dtype=np.float64).reshape(nrows, ncols)
    except ValueError:
        return None
    na_cols = np.zeros(ncols, dtype=bool)
    na_cols[np.asarray(na_idx, dtype=np.int64) % ncols] = True
    with np.errstate(invalid="ignore"):
        integral = np.logical_and.reduce(matrix == np.trunc(matrix), axis=0)
    cols = {}
    for j, name in enumerate(names):
        col = matrix[:, j]
        if integral[j] and not na_cols[j]:
            toks = flat[j::ncols]
            try:
                col = np.asarray(toks, dtype=np.int64)
            except ValueError:
                col = _narrow_integral(col)  # float-spelled integrals
            except OverflowError:
                col = _convert_column_sampled(toks)
        cols[name] = col
    return DataFrame(cols)


def _convert_column(toks: list[str], dtype: str) -> np.ndarray:
    """Convert one column's tokens given an inferred dtype.

    Clean numeric columns convert at C speed (as pandas's C parser does
    in *both* low_memory modes); only genuinely mixed columns fall back
    to the per-value object-safe parser. With the vectorized fast path
    on, float columns whose bulk cast fails only because of NA
    spellings convert through :func:`_cast_float_with_missing` — the
    per-value loop runs only for genuinely malformed tokens.
    """
    if dtype == "int64":
        try:
            return np.asarray(toks, dtype=np.int64)
        except (ValueError, OverflowError):
            return parse_column(toks)  # sampled inference was wrong
    if dtype == "float64":
        try:
            return np.asarray(toks, dtype=np.float64)
        except ValueError:
            if _VECTORIZED:
                col = _cast_float_with_missing(toks)
                if col is not None:
                    return col
            return parse_column(toks, dtype="float64")
    return parse_column(toks, dtype="object")


def _narrow_integral(col: np.ndarray) -> np.ndarray:
    """Narrow a float64 column to int64 when every value is integral."""
    with np.errstate(invalid="ignore"):
        integral = bool(np.all((col == np.trunc(col)) & (np.abs(col) < 2.0**62)))
    return col.astype(np.int64) if integral else col


def _convert_column_sampled(toks: list[str]) -> np.ndarray:
    """The reference per-column engine: sampled inference + conversion.

    This is the pre-vectorization behaviour, kept bit-for-bit: infer a
    dtype from the head sample, convert (falling back to the per-value
    parser when the sample lied), then narrow integral float columns.
    """
    dtype = infer_column_dtype(toks[:_INFER_SAMPLE_ROWS])
    col = _convert_column(toks, dtype)
    if col.dtype == np.float64:
        col = _narrow_integral(col)
    return col


def _convert_column_dispatch(toks: list[str]) -> np.ndarray:
    """Vectorized dtype-path dispatch: integral → float → NA-float → safe.

    Each rung is one bulk C-level cast; sampled inference (a ~100-token
    Python loop per column) runs only when every bulk rung fails. The
    ladder reproduces the sampled engine's output exactly: a clean int
    column casts on rung 1, a float (or int-then-float) column on rung
    2, a numeric column with NA spellings on rung 3, and anything with
    genuinely malformed tokens drops to the reference engine, whose
    fallbacks define the semantics for that case.
    """
    try:
        return np.asarray(toks, dtype=np.int64)
    except OverflowError:
        # out-of-range ints: the reference engine defines the semantics
        # (including the OverflowError an int-inferred column raises)
        return _convert_column_sampled(toks)
    except ValueError:
        pass
    try:
        return _narrow_integral(np.asarray(toks, dtype=np.float64))
    except ValueError:
        pass
    col = _cast_float_with_missing(toks)
    if col is not None:
        return _narrow_integral(col)
    return _convert_column_sampled(toks)


def _parse_columns_bulk(flat: list[str], nrows: int, names: Sequence) -> DataFrame:
    """Column-wise conversion for chunks where the bulk float cast failed."""
    ncols = len(names)
    convert = _convert_column_dispatch if _VECTORIZED else _convert_column_sampled
    cols = {}
    for j, name in enumerate(names):
        cols[name] = convert(flat[j::ncols])
    return DataFrame(cols)


#: Rows sampled for per-chunk dtype inference on the slow path.
_INFER_SAMPLE_ROWS = 100


def _parse_chunk_slow(lines: list[str], names: Sequence, sep: str = ",") -> DataFrame:
    """The ``low_memory=True`` engine: per-column, per-chunk block work.

    Value conversion itself runs at C speed (pandas's C parser does too);
    what makes this path slow is the *block management* that low_memory
    chunking forces: for every column of every small internal chunk, a
    dtype inference pass over a row sample, a separate array allocation,
    and a final cross-chunk consolidation in the caller. At 60,483
    columns and a handful of rows per chunk, that per-column fixed cost
    is paid per-value — the paper's wide-file bottleneck.
    """
    ncols = len(names)
    flat = _tokenize(lines, ncols, sep)
    cols = {}
    for j, name in enumerate(names):
        toks = flat[j::ncols]
        dtype = infer_column_dtype(toks[:_INFER_SAMPLE_ROWS])
        cols[name] = _convert_column(toks, dtype)
    return DataFrame(cols)


def _slow_path_rows_per_chunk(sample_line: str) -> int:
    """Rows per internal chunk under the slow path's byte budget.

    Wide rows (NT3: ~533 KB/row) degenerate this to 1-2 rows per chunk —
    the mechanism behind the paper's wide-file slowdowns.
    """
    row_bytes = max(1, len(sample_line) + 1)
    return max(1, LOW_MEMORY_CHUNK_BYTES // row_bytes)


def _read_frame(
    stream: _LineStream,
    names: Sequence,
    low_memory: bool,
    nrows: Optional[int],
    sep: str = ",",
) -> DataFrame:
    """Read up to ``nrows`` rows (or EOF) into one DataFrame."""
    remaining = nrows if nrows is not None else None
    first = stream.next_line()
    if first is None:
        return DataFrame({name: np.empty(0) for name in names})

    if low_memory:
        per_chunk = _slow_path_rows_per_chunk(first)
        parser = lambda lines, names: _parse_chunk_slow(lines, names, sep)  # noqa: E731
    else:
        # One large chunk sized like the paper's fix (16 MB I/O blocks).
        per_chunk = max(1, (16 << 20) // max(1, len(first) + 1))
        parser = lambda lines, names: _parse_chunk_fast(lines, names, sep)  # noqa: E731

    chunks: list[DataFrame] = []
    pending = [first]
    if remaining is not None:
        remaining -= 1
    while True:
        want = per_chunk - len(pending)
        if remaining is not None:
            want = min(want, remaining)
        batch = stream.next_lines(want) if want > 0 else []
        if remaining is not None:
            remaining -= len(batch)
        pending.extend(batch)
        if not pending:
            break
        chunks.append(parser(pending, names))
        pending = []
        if (remaining is not None and remaining <= 0) or len(batch) < max(want, 0):
            break

    if len(chunks) == 1:
        return chunks[0]
    _warn_mixed_dtypes(chunks, names)
    return concat(chunks, axis=0, ignore_index=True)


def _warn_mixed_dtypes(chunks: list[DataFrame], names: Sequence) -> None:
    """Emit the pandas-style DtypeWarning when chunks disagree."""
    mixed = []
    for name in names:
        kinds = {dtype_of_array(c[name]) for c in chunks}
        if len(kinds) > 1:
            mixed.append(name)
    if mixed:
        warnings.warn(
            f"columns {mixed[:5]}{'...' if len(mixed) > 5 else ''} have mixed "
            "dtypes across internal chunks; specify low_memory=False",
            DtypeWarning,
            stacklevel=3,
        )


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

class CSVChunkIterator:
    """Iterator over ``chunksize``-row DataFrames (pandas TextFileReader).

    The paper's optimized loader is::

        chunks = []
        for chunk in read_csv(path, header=None, chunksize=csize,
                              low_memory=False):
            chunks.append(chunk)
        df = concat(chunks, axis=0, ignore_index=True)
    """

    def __init__(
        self,
        fh: io.TextIOBase,
        names: Sequence,
        chunksize: int,
        low_memory: bool,
        stream: Optional["_LineStream"] = None,
        sep: str = ",",
    ):
        if chunksize <= 0:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        self._fh = fh
        self._stream = stream if stream is not None else _LineStream(fh)
        self._names = list(names)
        self._chunksize = int(chunksize)
        self._low_memory = low_memory
        self._sep = sep
        self._done = False

    def __iter__(self) -> Iterator[DataFrame]:
        return self

    def __next__(self) -> DataFrame:
        if self._done:
            raise StopIteration
        frame = _read_frame(
            self._stream, self._names, self._low_memory, nrows=self._chunksize,
            sep=self._sep,
        )
        if len(frame) == 0:
            self._done = True
            self.close()
            raise StopIteration
        if len(frame) < self._chunksize:
            self._done = True
        frame.parse_stats = LAST_PARSE_STATS.snapshot()
        return frame

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "CSVChunkIterator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _resolve_header(stream: _LineStream, header, names, sep: str = ",") -> list:
    """Consume a header line if present; return column names.

    Peeked data lines are pushed back so parsing starts at row 0.
    """
    if names is not None:
        if header == 0:
            line = stream.next_line()
            if line is None:
                raise ValueError("empty CSV file")
        return list(names)
    line = stream.next_line()
    if line is None:
        raise ValueError("empty CSV file")
    if header is None:
        stream.push_back(line)
        return list(range(line.count(sep) + 1))
    if header == 0:
        return line.split(sep)
    if header == "infer":
        toks = line.split(sep)
        try:
            [float(t) for t in toks]  # a header row is not fully numeric
        except ValueError:
            return toks
        stream.push_back(line)
        return list(range(len(toks)))
    raise ValueError(f"unsupported header value {header!r}")


def read_csv(
    path,
    header="infer",
    names: Optional[Sequence] = None,
    chunksize: Optional[int] = None,
    low_memory: bool = True,
    nrows: Optional[int] = None,
    usecols: Optional[Sequence] = None,
    sep: str = ",",
    skiprows: int = 0,
    comment: Optional[str] = None,
    dtype=None,
):
    """Read a CSV file (pandas.read_csv signature subset).

    Parameters mirror pandas: ``header=None`` for headerless numeric
    files (what all CANDLE loaders pass), ``chunksize`` to get an
    iterator of frames, ``low_memory`` to select the parsing engine
    (see module docstring), ``nrows``/``usecols`` for subsetting,
    ``sep`` for the delimiter, ``skiprows`` to drop leading lines,
    ``comment`` to skip lines starting with a marker character, and
    ``dtype`` to force every column to one NumPy dtype after parsing.

    Returns a :class:`DataFrame`, or a :class:`CSVChunkIterator` when
    ``chunksize`` is given.
    """
    if not sep:
        raise ValueError("sep must be a non-empty string")
    LAST_PARSE_STATS.reset()
    if skiprows < 0:
        raise ValueError(f"skiprows must be non-negative, got {skiprows}")
    owns_fh = not hasattr(path, "read")
    fh = open(path, "r", newline="") if owns_fh else path
    try:
        stream = _LineStream(fh, comment=comment)
        stream.skip(skiprows)
        resolved = _resolve_header(stream, header, names, sep=sep)
    except Exception:
        if owns_fh:
            fh.close()
        raise

    if chunksize is not None:
        return CSVChunkIterator(
            fh, resolved, chunksize, low_memory, stream=stream, sep=sep
        )

    try:
        frame = _read_frame(stream, resolved, low_memory, nrows=nrows, sep=sep)
    finally:
        if owns_fh:
            fh.close()
    if usecols is not None:
        frame = frame[list(usecols)]
    if dtype is not None:
        frame = frame.astype(dtype)
    frame.parse_stats = LAST_PARSE_STATS.snapshot()
    return frame
