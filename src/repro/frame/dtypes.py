"""Per-value and per-column dtype inference.

This module is deliberately written at Python speed: it models the
"object-safe" parsing work a CSV engine does when it cannot assume a
column's type. The slow ``low_memory=True`` path in
:mod:`repro.frame.csv` calls :func:`parse_column` per column per
internal chunk — exactly the cost center the paper identified.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "parse_value",
    "infer_column_dtype",
    "parse_column",
    "promote",
    "MISSING_TOKENS",
]

MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "NA", "N/A", "NaN", "NULL", "None"})

# dtype lattice rank: promotion always moves toward object
_RANK = {"int64": 0, "float64": 1, "object": 2}


def parse_value(token: str):
    """Parse a single CSV token to int, float, NaN, or str (slowest path).

    Mirrors an object-mode parser: two exception-guarded conversion
    attempts per value. This is intentionally per-value Python work.
    """
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    if token in MISSING_TOKENS:
        return float("nan")
    return token


def infer_column_dtype(tokens: Sequence[str]) -> str:
    """Infer the narrowest dtype ('int64' | 'float64' | 'object') for tokens."""
    dtype = "int64"
    for tok in tokens:
        if dtype == "int64":
            try:
                int(tok)
                continue
            except ValueError:
                dtype = "float64"
        if dtype == "float64":
            try:
                float(tok)
                continue
            except ValueError:
                if tok in MISSING_TOKENS:
                    continue
                return "object"
    return dtype


def parse_column(tokens: Sequence[str], dtype: str | None = None) -> np.ndarray:
    """Convert one column of tokens to an array, value by value.

    When ``dtype`` is None it is inferred first (a full extra pass). This
    is the ``low_memory=True`` cost model: O(values) Python-level work.
    """
    if dtype is None:
        dtype = infer_column_dtype(tokens)
    if dtype == "int64":
        out = np.empty(len(tokens), dtype=np.int64)
        for i, tok in enumerate(tokens):
            out[i] = int(tok)
        return out
    if dtype == "float64":
        out_f = np.empty(len(tokens), dtype=np.float64)
        for i, tok in enumerate(tokens):
            try:
                out_f[i] = float(tok)
            except ValueError:
                out_f[i] = np.nan
        return out_f
    obj = np.empty(len(tokens), dtype=object)
    for i, tok in enumerate(tokens):
        obj[i] = parse_value(tok)
    return obj


def promote(a: str, b: str) -> str:
    """Join two dtypes on the int64 < float64 < object lattice."""
    for d in (a, b):
        if d not in _RANK:
            raise ValueError(f"unknown dtype {d!r}")
    return a if _RANK[a] >= _RANK[b] else b


def dtype_of_array(arr: np.ndarray) -> str:
    """Classify a NumPy array into the three-dtype lattice."""
    kind = arr.dtype.kind
    if kind in "iub":
        return "int64"
    if kind == "f":
        return "float64"
    return "object"


def cast_to(arr: np.ndarray, dtype: str) -> np.ndarray:
    """Cast an array up the lattice (never narrows)."""
    current = dtype_of_array(arr)
    if current == dtype:
        return arr
    if _RANK[dtype] < _RANK[current]:
        raise ValueError(f"refusing to narrow {current} -> {dtype}")
    if dtype == "float64":
        return arr.astype(np.float64)
    return arr.astype(object)
