"""Figure 19: weak-scaling broadcast overhead on 768 GPUs.

"The broadcast overhead decreases from 37.65 s to 5.3 s on 768 GPUs
(128 nodes), which is an 85.92% improvement." Same mechanism as Fig 12,
at the weak-scaling configuration (8 epochs/GPU).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.timeline_analysis import broadcast_overhead_seconds
from repro.candle.nt3 import NT3_SPEC
from repro.core.scaling import weak_scaling_plan
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.report import improvement_percent
from repro.sim.runner import ScaledRunSimulator


def run(
    fast: bool = True,
    nworkers: int = 768,
    collective=None,
    config: Optional[ExperimentConfig] = None,
) -> ExperimentResult:
    if config is not None:
        fast = config.fast
        nworkers = config.nworkers or nworkers
        collective = config.collective
    sim = ScaledRunSimulator("summit", collective=collective)
    plan = weak_scaling_plan(NT3_SPEC, nworkers)
    rows = []
    overheads = {}
    comm_bands = 0
    for method in ("original", "chunked"):
        report = sim.run(NT3_SPEC, plan, method=method)
        overhead = broadcast_overhead_seconds(report.timeline)
        overheads[method] = overhead
        # "the timeline shows 8 pieces of the communication for 8 epochs"
        rank0 = min(report.profiles)
        comm_bands = sum(
            1
            for e in report.timeline.events_named("nccl_allreduce")
            if e.rank == rank0
        )
        rows.append(
            {
                "method": method,
                "epochs_per_gpu": plan.epochs_per_worker,
                "negotiate_wait_s": round(report.broadcast_wait_s, 2),
                "broadcast_overhead_s": round(overhead, 2),
                "allreduce_per_epoch_s": round(
                    report.train_comm_s / plan.epochs_per_worker, 2
                ),
                "comm_bands": comm_bands,
            }
        )
    impr = improvement_percent(overheads["original"], overheads["chunked"])
    return ExperimentResult(
        experiment_id="fig19",
        title=f"NT3 weak-scaling broadcast overhead on {nworkers} GPUs (paper Fig 19)",
        panels={"": rows},
        paper_claims={
            "original overhead s": 37.65,
            "optimized overhead s": 5.3,
            "overhead improvement %": 85.92,
            "communication pieces == epochs (8)": 8,
        },
        measured={
            "original overhead s": round(overheads["original"], 2),
            "optimized overhead s": round(overheads["chunked"], 2),
            "overhead improvement %": round(impr, 2),
            "communication pieces == epochs (8)": comm_bands,
        },
    )
