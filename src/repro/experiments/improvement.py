"""Shared builder for the original-vs-optimized improvement experiments.

Figures 11, 13-17, 20, 21 and §5.4 all show the same comparison — total
time (and energy) of the original loader vs the chunked loader across a
worker-count sweep — differing only in benchmark, machine, and scaling
mode. This builder produces their common result structure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.candle.base import BenchmarkSpec
from repro.experiments import common
from repro.experiments.base import ExperimentResult

__all__ = ["improvement_experiment"]


def improvement_experiment(
    experiment_id: str,
    title: str,
    spec: BenchmarkSpec,
    machine: str,
    counts: Sequence[int],
    mode: str = "strong",
    paper_perf_max: Optional[float] = None,
    paper_energy_max: Optional[float] = None,
    paper_perf_min: Optional[float] = None,
    paper_energy_min: Optional[float] = None,
    notes: str = "",
    ingest_methods: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Build one original-vs-optimized comparison experiment.

    ``ingest_methods`` optionally adds a second panel sweeping the full
    ingest registry (parallel, cached, sharded, ...) through the same
    simulator, so the paper's two-way comparison extends to the modes
    :mod:`repro.ingest` adds.
    """
    comparisons = common.comparison_sweep(spec, machine, counts, mode=mode)
    rows = [c.as_row() for c in comparisons]
    perf = [c.performance_improvement_pct for c in comparisons]
    energy = [c.energy_saving_pct for c in comparisons]
    claims: dict[str, float] = {}
    measured: dict[str, float] = {}
    if paper_perf_max is not None:
        claims["max perf improvement %"] = paper_perf_max
        measured["max perf improvement %"] = max(perf)
    if paper_energy_max is not None:
        claims["max energy saving %"] = paper_energy_max
        measured["max energy saving %"] = max(energy)
    if paper_perf_min is not None:
        claims["min perf improvement %"] = paper_perf_min
        measured["min perf improvement %"] = min(perf)
    if paper_energy_min is not None:
        claims["min energy saving %"] = paper_energy_min
        measured["min energy saving %"] = min(energy)
    panels = {"": rows}
    if ingest_methods:
        panels["ingest methods"] = ingest_method_rows(
            spec, machine, counts, ingest_methods, mode=mode
        )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        panels=panels,
        paper_claims=claims,
        measured=measured,
        notes=notes,
    )


def ingest_method_rows(
    spec: BenchmarkSpec,
    machine: str,
    counts: Sequence[int],
    methods: Sequence[str],
    mode: str = "strong",
) -> list[dict]:
    """Per-worker-count load/total seconds for each ingest method."""
    rows = []
    for n in counts:
        runs = {
            m: common.sim_sweep(spec, machine, [n], mode=mode, method=m)[0]
            for m in methods
        }
        base = runs[methods[0]]
        row: dict = {"gpus": n}
        for m, rep in runs.items():
            row[f"{m}_load_s"] = round(rep.load_s, 2)
            row[f"{m}_total_s"] = round(rep.total_s, 2)
        row["best_method"] = min(methods, key=lambda m: runs[m].total_s)
        row["best_speedup"] = round(base.total_s / runs[row["best_method"]].total_s, 2)
        rows.append(row)
    return rows
