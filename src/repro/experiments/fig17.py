"""Figure 17: P1B2 original vs optimized on Theta."""

from __future__ import annotations

from repro.candle.p1b2 import P1B2_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import improvement_experiment


def run(fast: bool = True) -> ExperimentResult:
    counts = common.THETA_NODES
    if fast:
        counts = common.thin(counts)
    return improvement_experiment(
        "fig17",
        "P1B2 on Theta: performance and energy (paper Fig 17)",
        P1B2_SPEC,
        "theta",
        counts,
        mode="strong",
        paper_perf_max=40.72,
        paper_energy_max=40.95,
        notes='',
    )
