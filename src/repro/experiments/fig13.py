"""Figure 13: NT3 original vs optimized on Theta (up to 384 nodes).

Theta's Lustre contention makes parallel loading >4x Summit's, but the
KNL compute phase is huge (695 s/epoch), so improvements cap lower:
38.46% time, 32.21% energy."""

from __future__ import annotations

from repro.candle.nt3 import NT3_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import improvement_experiment


def run(fast: bool = True) -> ExperimentResult:
    counts = common.THETA_NODES
    if fast:
        counts = common.thin(counts)
    return improvement_experiment(
        "fig13",
        "NT3 on Theta: performance and energy (paper Fig 13)",
        NT3_SPEC,
        "theta",
        counts,
        mode="strong",
        paper_perf_max=38.46,
        paper_energy_max=32.21,
        notes='Node-level (PoLiMEr) power: narrow dynamic range, so energy tracks time.',
    )
