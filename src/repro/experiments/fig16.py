"""Figure 16: P1B2 original vs optimized on Summit."""

from __future__ import annotations

from repro.candle.p1b2 import P1B2_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import improvement_experiment


def run(fast: bool = True) -> ExperimentResult:
    counts = common.STRONG_GPUS
    if fast:
        counts = common.thin(counts)
    return improvement_experiment(
        "fig16",
        "P1B2 on Summit: performance and energy (paper Fig 16)",
        P1B2_SPEC,
        "summit",
        counts,
        mode="strong",
        paper_perf_max=55.45,
        paper_energy_max=55.44,
        notes="Paper's energy saving (55.44%) ~= its perf improvement (55.45%).",
    )
