"""repro.experiments — one module per paper table/figure.

Every experiment is a function ``run(fast=True) -> ExperimentResult``
that regenerates the rows/series its table or figure reports:

========== =============================================================
id         what it reproduces
========== =============================================================
table1     benchmark characteristics (epochs, batch, samples, steps)
fig6       NT3 Summit strong scaling: times (a) and accuracy (b)
table2     NT3 time/epoch and average GPU power vs GPUs
fig7       GPU power over time + Horovod timeline on 384 GPUs
fig8       P1B1 strong scaling: times (a) and training loss (b)
fig9       P1B2 strong scaling: times (a) and accuracy (b)
fig10      P1B3 batch-size scaling strategies: times (a), accuracy (b)
table3     data-loading seconds by method on Summit
table4     data-loading seconds by method on Theta
fig11      NT3 Summit: original vs optimized total time
table5     NT3 Summit: GPU power and energy, original vs optimized
fig12      NT3 broadcast overhead, original vs optimized (384 GPUs)
fig13      NT3 Theta: performance + energy improvement
fig14      P1B1 Summit: performance + energy improvement
fig15      P1B1 Theta: performance + energy improvement
fig16      P1B2 Summit: performance + energy improvement
fig17      P1B2 Theta: performance + energy improvement
p1b3_opt   §5.4: P1B3 sees only ~6.5% improvement
fig18      NT3 weak scaling on Summit up to 3,072 GPUs
fig19      weak-scaling broadcast overhead on 768 GPUs
table6     NT3 weak scaling: accuracy, time/epoch, power
fig20      P1B1 weak scaling: performance + energy
fig21      P1B2 weak scaling: performance + energy
calibration the model-vs-paper anchor table (Appendix of EXPERIMENTS.md)
========== =============================================================

``fast=True`` (the default, used by tests) shrinks the functional
training runs; ``fast=False`` runs the full grids the benchmark harness
uses to regenerate EXPERIMENTS.md.
"""

from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "list_experiments",
]
