"""Checkpoint-interval vs MTBF: time and energy overhead at paper scale.

The paper's §7 promises checkpoint/restart for fault tolerance; this
experiment quantifies what that costs and how to tune it. Three panels:

a. **Analytic** — Daly's expected-makespan model for a 24-hour NT3
   campaign on 1,536 Summit GPUs: sweep the checkpoint interval as
   multiples of the Young/Daly optimum τ = √(2·C·M) and show the
   makespan is minimized at the optimum (too-frequent checkpoints pay
   write overhead, too-rare ones pay lost work).
b. **Simulated** — the same sweep through
   :class:`repro.sim.faultmodel.ResilientRunSimulator`: seeded failure
   arrivals, lost work, restarts with data reload, and the *energy*
   overhead the analytic model cannot see (lost work burns training
   power, restart reloads burn I/O power).
c. **MTBF sweep** — per-rank MTBF from harsh to generous, always
   checkpointing at that MTBF's own τ_opt: the overhead of resilience
   as a function of machine reliability.
"""

from __future__ import annotations

import math

from repro.candle.nt3 import NT3_SPEC
from repro.cluster.machine import SUMMIT
from repro.core.scaling import strong_scaling_plan
from repro.experiments.base import ExperimentResult
from repro.sim.faultmodel import (
    FailureModel,
    ResilientRunSimulator,
    checkpoint_write_seconds,
    daly_interval,
    expected_makespan,
    young_daly_interval,
)

#: the paper's Summit configuration: 256 nodes x 6 V100s
NWORKERS = 1536

#: a day-long campaign for the analytic panel (many trials back-to-back)
CAMPAIGN_WORK_S = 24 * 3600.0

#: harsh per-rank MTBF for the simulated panel so seeded failures
#: actually land inside a short simulated run
SIM_MTBF_RANK_S = 7 * 24 * 3600.0

#: per-worker epoch budget for the simulated panel: long enough that
#: training dominates the one-off data-load, as in the paper's real
#: campaigns, so the checkpoint-interval trade-off is actually exercised
SIM_EPOCHS_PER_WORKER = 64

RESTART_S = 120.0

INTERVAL_MULTIPLES = (0.25, 0.5, 1.0, 2.0, 4.0)


def run(fast: bool = True) -> ExperimentResult:
    ckpt_s = checkpoint_write_seconds(NT3_SPEC, SUMMIT)

    # ---- panel a: Daly's analytic makespan over the interval sweep ----
    job_mtbf = SIM_MTBF_RANK_S / NWORKERS
    tau_opt = young_daly_interval(ckpt_s, job_mtbf)
    rows_a = []
    for mult in INTERVAL_MULTIPLES:
        tau = tau_opt * mult
        makespan = expected_makespan(
            CAMPAIGN_WORK_S, tau, ckpt_s, job_mtbf, RESTART_S
        )
        rows_a.append(
            {
                "interval_x_tau_opt": mult,
                "interval_s": round(tau, 1),
                "expected_makespan_h": round(makespan / 3600.0, 3),
                "overhead_pct": round(
                    (makespan - CAMPAIGN_WORK_S) / CAMPAIGN_WORK_S * 100, 2
                ),
            }
        )
    best_mult = min(rows_a, key=lambda r: r["expected_makespan_h"])[
        "interval_x_tau_opt"
    ]

    # fine numeric argmin vs Daly's closed-form optimum
    grid = [tau_opt * (0.05 + 0.01 * i) for i in range(400)]
    numeric_opt = min(
        grid,
        key=lambda t: expected_makespan(
            CAMPAIGN_WORK_S, t, ckpt_s, job_mtbf, RESTART_S
        ),
    )
    daly_opt = daly_interval(ckpt_s, job_mtbf)
    daly_err_pct = abs(daly_opt - numeric_opt) / numeric_opt * 100.0

    # ---- panel b: simulated sweep with seeded failures ----------------
    plan = strong_scaling_plan(
        NT3_SPEC,
        nworkers=NWORKERS,
        total_epochs=NWORKERS * SIM_EPOCHS_PER_WORKER,
    )
    fm = FailureModel(mtbf_rank_s=SIM_MTBF_RANK_S, restart_s=RESTART_S)
    sim = ResilientRunSimulator(SUMMIT, fm)
    seeds = (3,) if fast else (3, 5, 7)
    rows_b = []
    for mult in INTERVAL_MULTIPLES:
        reps = [
            sim.run(NT3_SPEC, plan, interval_s=tau_opt * mult, seed=s)
            for s in seeds
        ]
        rows_b.append(
            {
                "interval_x_tau_opt": mult,
                "interval_s": round(tau_opt * mult, 1),
                "failures": round(
                    sum(r.n_failures for r in reps) / len(reps), 1
                ),
                "checkpoints": round(
                    sum(r.n_checkpoints for r in reps) / len(reps), 1
                ),
                "time_overhead_pct": round(
                    sum(r.time_overhead_pct for r in reps) / len(reps), 2
                ),
                "energy_overhead_pct": round(
                    sum(r.energy_overhead_pct for r in reps) / len(reps), 2
                ),
            }
        )
    # no-checkpoint control: one giant interval, same failure seeds
    no_ckpt = [
        sim.run(NT3_SPEC, plan, interval_s=1e12, seed=s) for s in seeds
    ]
    at_opt = [
        sim.run(NT3_SPEC, plan, interval_s=tau_opt, seed=s) for s in seeds
    ]
    n_fail_total = sum(r.n_failures for r in no_ckpt)
    ckpt_beats_none = sum(a.total_s for a in at_opt) < sum(
        r.total_s for r in no_ckpt
    )

    # ---- panel c: MTBF sweep at each MTBF's own tau_opt ---------------
    rows_c = []
    for mtbf_days in (1, 7, 30, 90):
        mtbf_rank = mtbf_days * 24 * 3600.0
        fm_c = FailureModel(mtbf_rank_s=mtbf_rank, restart_s=RESTART_S)
        tau_c = young_daly_interval(ckpt_s, fm_c.job_mtbf_s(NWORKERS))
        rep = ResilientRunSimulator(SUMMIT, fm_c).run(
            NT3_SPEC, plan, interval_s=tau_c, seed=seeds[0]
        )
        rows_c.append(
            {
                "mtbf_rank_days": mtbf_days,
                "job_mtbf_s": round(fm_c.job_mtbf_s(NWORKERS), 1),
                "tau_opt_s": round(tau_c, 1),
                "failures": rep.n_failures,
                "time_overhead_pct": round(rep.time_overhead_pct, 2),
                "energy_overhead_pct": round(rep.energy_overhead_pct, 2),
            }
        )
    # analytic overhead at tau_opt shrinks as the machine gets healthier
    analytic_ovh = [
        expected_makespan(
            CAMPAIGN_WORK_S,
            young_daly_interval(ckpt_s, d * 24 * 3600.0 / NWORKERS),
            ckpt_s,
            d * 24 * 3600.0 / NWORKERS,
            RESTART_S,
        )
        for d in (1, 7, 30, 90)
    ]
    ovh_monotone = all(
        analytic_ovh[i] >= analytic_ovh[i + 1] for i in range(len(analytic_ovh) - 1)
    )

    return ExperimentResult(
        experiment_id="checkpoint_interval",
        title=(
            "Checkpoint interval vs MTBF: time/energy overhead "
            f"(NT3, Summit, {NWORKERS} GPUs)"
        ),
        panels={
            "a: analytic expected makespan (24 h campaign)": rows_a,
            "b: simulated overhead, seeded failures": rows_b,
            "c: MTBF sweep at tau_opt": rows_c,
        },
        paper_claims={
            "analytic makespan minimized at tau_opt (x1.0)": 1.0,
            "Daly optimum within 5% of numeric argmin": 1.0,
            "checkpointing at tau_opt beats no checkpoints": 1.0,
            "overhead at tau_opt shrinks with healthier MTBF": 1.0,
        },
        measured={
            "analytic makespan minimized at tau_opt (x1.0)": float(
                best_mult == 1.0
            ),
            "Daly optimum within 5% of numeric argmin": float(
                daly_err_pct <= 5.0
            ),
            "checkpointing at tau_opt beats no checkpoints": float(
                n_fail_total >= 1 and ckpt_beats_none
            ),
            "overhead at tau_opt shrinks with healthier MTBF": float(
                ovh_monotone
            ),
        },
        notes=(
            f"C = {ckpt_s:.2f} s per checkpoint (rank-0 write of weights + "
            f"Adam slots through one GPFS client), job MTBF = "
            f"{job_mtbf:.0f} s at {NWORKERS} ranks -> tau_opt = "
            f"{tau_opt:.1f} s (Young) / {daly_opt:.1f} s (Daly, "
            f"{daly_err_pct:.1f}% off the numeric argmin). The energy "
            "overhead exceeds the time overhead's I/O share because lost "
            "work burns full training power before every restart."
        ),
    )
