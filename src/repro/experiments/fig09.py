"""Figure 9: Horovod P1B2 on Summit under strong scaling.

(a) Times for batch 60 (default) and 100; loading grows dominant with
    GPU count.
(b) Training accuracy vs GPUs: "accuracy decreases significantly when
    using 96 GPUs or more … using 16 epochs or more per GPU for model
    training will result in high accuracy" (768/48 = 16).
"""

from __future__ import annotations

from repro.candle.p1b2 import P1B2_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    counts = common.STRONG_GPUS
    b60 = common.sim_sweep(P1B2_SPEC, "summit", counts, method="original", batch_size=60)
    b100 = common.sim_sweep(P1B2_SPEC, "summit", counts, method="original", batch_size=100)
    t_rows = []
    for n, r60, r100 in zip(counts, b60, b100):
        t_rows.append(
            {
                "gpus": n,
                "epochs_per_gpu": r60.plan.epochs_per_worker,
                "total_s_b60": round(r60.total_s, 1),
                "total_s_b100": round(r100.total_s, 1),
                "data_loading_s": round(r60.load_s, 1),
                "loading_dominates": r60.load_s > r60.train_s,
            }
        )

    acc_counts = (24, 48, 96, 192) if fast else (12, 24, 48, 96, 192, 384)
    scale = 0.004 if fast else 0.008
    acc_rows = []
    for n in acc_counts:
        m = common.accuracy_point(
            "p1b2", n, total_epochs=P1B2_SPEC.epochs, scale=scale, sample_scale=1.0
        )
        acc_rows.append(
            {
                "gpus": n,
                "epochs_per_gpu": m["epochs_per_worker"],
                "accuracy": round(m.get("accuracy", 0.0), 3),
            }
        )

    acc48 = next((r["accuracy"] for r in acc_rows if r["gpus"] == 48), None)
    acc_high = acc_rows[-1]["accuracy"]
    return ExperimentResult(
        experiment_id="fig9",
        title="Horovod P1B2 on Summit: strong scaling (paper Fig 9)",
        panels={"a: performance": t_rows, "b: training accuracy": acc_rows},
        paper_claims={
            "accuracy high at >=16 epochs/GPU (48 GPUs)": 1.0,
            "accuracy drops at >=96 GPUs": 1.0,
        },
        measured={
            "accuracy high at >=16 epochs/GPU (48 GPUs)": float(
                (acc48 or 0.0) > 0.8
            ),
            "accuracy drops at >=96 GPUs": float(acc_high < (acc48 or 1.0)),
        },
    )
