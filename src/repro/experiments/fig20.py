"""Figure 20: P1B1 weak scaling (8 epochs/GPU): 75.24-79.50% time,
69.70-77.11% energy in the paper."""

from __future__ import annotations

from repro.candle.p1b1 import P1B1_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import improvement_experiment


def run(fast: bool = True) -> ExperimentResult:
    counts = common.WEAK_GPUS
    if fast:
        counts = common.thin(counts)
    return improvement_experiment(
        "fig20",
        "P1B1 weak scaling on Summit (paper Fig 20)",
        P1B1_SPEC,
        "summit",
        counts,
        mode="weak",
        paper_perf_max=79.5,
        paper_energy_max=77.11,
        paper_perf_min=75.24,
        paper_energy_min=69.7,
        notes='Energy deviates from the paper: see EXPERIMENTS.md.',
    )
