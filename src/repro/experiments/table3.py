"""Table 3: data-loading seconds by method and file, on Summit.

Two panels: the paper-scale analytic model (the table itself) and an
optional *functional* verification — actually parsing generated CSVs
with :mod:`repro.frame` at reduced scale to confirm the speedup ratios
emerge from the real code paths, not just the cost model.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.candle.registry import all_benchmarks
from repro.cluster.machine import SUMMIT, MachineSpec
from repro.experiments.base import ExperimentResult
from repro.ingest import DataSource, LoaderConfig
from repro.sim.iomodel import IoModel, benchmark_files

PAPER_TABLE3 = {
    "NT3": {"train_original": 81.72, "train_chunked": 14.30, "test_original": 22.25, "test_chunked": 5.25},
    "P1B1": {"train_original": 235.68, "train_chunked": 30.99, "test_original": 80.77, "test_chunked": 14.47},
    "P1B2": {"train_original": 40.98, "train_chunked": 11.03, "test_original": 15.95, "test_chunked": 5.33},
    "P1B3": {"train_original": 5.41, "train_chunked": 5.34, "test_original": 3.20, "test_chunked": 2.52},
}


def model_rows(machine: MachineSpec, paper: dict) -> list[dict]:
    io = IoModel(machine)
    rows = []
    for bench in all_benchmarks():
        spec = bench.spec
        model = io.table_row(spec)
        row = {"benchmark": spec.name}
        for key, value in model.items():
            row[key] = round(value, 2)
            row[f"{key}_paper"] = paper[spec.name][key]
        row["speedup_model"] = round(model["train_original"] / model["train_chunked"], 2)
        row["speedup_paper"] = round(
            paper[spec.name]["train_original"] / paper[spec.name]["train_chunked"], 2
        )
        rows.append(row)
    return rows


def functional_rows(scale_wide: float = 0.004, seed: int = 0) -> list[dict]:
    """Parse real generated CSVs with both engines at reduced scale."""
    rows = []
    rng = np.random.default_rng(seed)
    with tempfile.TemporaryDirectory() as tmp:
        for bench in all_benchmarks():
            b = type(bench)(scale=scale_wide, sample_scale=min(1.0, scale_wide * 25))
            train_path, _ = b.write_files(tmp, rng=rng)
            source = DataSource(train_path)
            t_orig = source.load(LoaderConfig(method="original")).seconds
            t_chunk = source.load(LoaderConfig(method="chunked")).seconds
            t_dask = source.load(LoaderConfig(method="dask")).seconds
            rows.append(
                {
                    "benchmark": b.spec.name,
                    "file_mb": round(os.path.getsize(train_path) / 1e6, 2),
                    "original_s": round(t_orig, 3),
                    "chunked_s": round(t_chunk, 3),
                    "dask_s": round(t_dask, 3),
                    "speedup": round(t_orig / t_chunk, 2),
                }
            )
    return rows


def run(fast: bool = True) -> ExperimentResult:
    panels = {"model (paper scale)": model_rows(SUMMIT, PAPER_TABLE3)}
    if not fast:
        panels["functional (reduced scale)"] = functional_rows()
    claims, measured = {}, {}
    for row in panels["model (paper scale)"]:
        claims[f"{row['benchmark']} speedup"] = row["speedup_paper"]
        measured[f"{row['benchmark']} speedup"] = row["speedup_model"]
    return ExperimentResult(
        experiment_id="table3",
        title="Data-loading performance by method on Summit (paper Table 3)",
        panels=panels,
        paper_claims=claims,
        measured=measured,
        notes=(
            "Wide-row files (NT3/P1B1/P1B2) speed up 3.7-7.6x under chunked "
            "low_memory=False; the narrow-row P1B3 file barely moves."
        ),
    )
