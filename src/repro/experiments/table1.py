"""Table 1: epochs, batch size, data samples, and file sizes per benchmark."""

from __future__ import annotations

from repro.candle.registry import all_benchmarks
from repro.experiments.base import ExperimentResult

PAPER_STEPS_PER_EPOCH = {"NT3": 56, "P1B1": 27, "P1B2": 45, "P1B3": 9001}


def run(fast: bool = True) -> ExperimentResult:
    rows = [b.describe() for b in all_benchmarks()]
    measured = {
        f"{r['benchmark']} steps/epoch": float(r["steps_per_epoch"]) for r in rows
    }
    claims = {
        f"{name} steps/epoch": float(v) for name, v in PAPER_STEPS_PER_EPOCH.items()
    }
    return ExperimentResult(
        experiment_id="table1",
        title="CANDLE P1 benchmark characteristics (paper Table 1)",
        panels={"": rows},
        paper_claims=claims,
        measured=measured,
        notes="Derived batch steps per epoch must equal the paper's §2.1 values.",
    )
