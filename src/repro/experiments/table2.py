"""Table 2: NT3 time per epoch (s) and average GPU power (W) vs GPUs.

The paper's observations this table carries:

- time/epoch grows from ~10 s on 1 GPU to ~22 s on 384 GPUs (Horovod
  allreduce overhead);
- a larger batch (40) gives smaller time/epoch and lower GPU power;
- batch 50+ runs out of GPU memory (§4.2.1).
"""

from __future__ import annotations

from repro.candle.nt3 import NT3_SPEC
from repro.core.batch_scaling import BatchMemoryError, check_batch_fits
from repro.experiments import common
from repro.experiments.base import ExperimentResult

#: NT3's conv stack multiplies the 60,483-float input by ~256x in
#: activations (two 128-filter conv layers) — the paper hits OOM at
#: batch 50 on a 16 GB V100, which pins this multiplier
NT3_ACTIVATION_MULTIPLIER = 1030.0


def train_power_rows(counts) -> list[dict]:
    rows = []
    for batch in (20, 40):
        sweep = common.sim_sweep(
            NT3_SPEC, "summit", counts, method="original", batch_size=batch
        )
        for n, r in zip(counts, sweep):
            rows.append(
                {
                    "gpus": n,
                    "batch": batch,
                    "time_per_epoch_s": round(r.time_per_epoch_s, 2),
                    "train_power_w": round(_train_power(r), 1),
                }
            )
    return rows


def _train_power(report) -> float:
    """Average power over the training phase only (what Table 2 shows)."""
    from repro.cluster.machine import SUMMIT
    from repro.sim.computemodel import ComputeModel

    power = SUMMIT.worker_device_power()
    cm = ComputeModel(SUMMIT)
    intensity = cm.train_intensity(NT3_SPEC, report.plan.batch_size)
    p_compute = power.compute_w(intensity)
    p_comm = power.communicate_w()
    total = report.train_compute_s + report.train_comm_s
    if total == 0:
        return 0.0
    return (report.train_compute_s * p_compute + report.train_comm_s * p_comm) / total


def oom_rows() -> list[dict]:
    """Memory check: batch 40 fits, batch 50 OOMs (paper §4.2.1)."""
    rows = []
    for batch in (20, 40, 50, 60):
        try:
            check_batch_fits(
                batch,
                NT3_SPEC.elements_per_sample,
                NT3_ACTIVATION_MULTIPLIER,
                device_mem_gb=16.0,
            )
            rows.append({"batch": batch, "fits": True})
        except BatchMemoryError:
            rows.append({"batch": batch, "fits": False})
    return rows


def run(fast: bool = True) -> ExperimentResult:
    counts = (1, 6, 24, 96, 384) if fast else common.STRONG_GPUS
    rows = train_power_rows(counts)
    per1 = next(r for r in rows if r["gpus"] == 1 and r["batch"] == 20)
    per384 = next(r for r in rows if r["gpus"] == counts[-1] and r["batch"] == 20)
    # the batch-size effects are Table 2's per-configuration statement;
    # evaluate them where communication does not dilute them (1 GPU)
    b20 = next(r for r in rows if r["gpus"] == 1 and r["batch"] == 20)
    b40 = next(r for r in rows if r["gpus"] == 1 and r["batch"] == 40)
    return ExperimentResult(
        experiment_id="table2",
        title="NT3 time/epoch and average GPU power vs GPUs (paper Table 2)",
        panels={"time & power": rows, "memory limit": oom_rows()},
        paper_claims={
            "time/epoch 1 GPU (s)": 10.3,
            "time/epoch 384 GPUs (s)": 22.0,
            "batch 40 time/epoch < batch 20": 1.0,
            "batch 40 power < batch 20": 1.0,
            "batch 50 OOM": 1.0,
        },
        measured={
            "time/epoch 1 GPU (s)": per1["time_per_epoch_s"],
            "time/epoch 384 GPUs (s)": per384["time_per_epoch_s"],
            "batch 40 time/epoch < batch 20": float(
                b40["time_per_epoch_s"] < b20["time_per_epoch_s"]
            ),
            "batch 40 power < batch 20": float(
                b40["train_power_w"] < b20["train_power_w"]
            ),
            "batch 50 OOM": float(not next(r["fits"] for r in oom_rows() if r["batch"] == 50)),
        },
    )
