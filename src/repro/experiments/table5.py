"""Table 5: NT3 GPU power (a) and energy (b), original vs optimized.

The paper's headline power/energy mechanics: shortening the low-power
data-loading phase *raises average GPU power* (up to +68.77%) while
*cutting energy* (up to −55.93%) — less time idling at ~40 W.
"""

from __future__ import annotations

from repro.candle.nt3 import NT3_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    counts = common.thin(common.STRONG_GPUS) if fast else common.STRONG_GPUS
    comparisons = common.comparison_sweep(NT3_SPEC, "summit", counts)
    rows = []
    for c in comparisons:
        rows.append(
            {
                "gpus": c.nworkers,
                "orig_power_w": round(c.original_power_w, 1),
                "opt_power_w": round(c.optimized_power_w, 1),
                "power_increase_pct": round(c.power_increase_pct, 2),
                "orig_energy_kj": round(c.original_energy_j / 1e3, 2),
                "opt_energy_kj": round(c.optimized_energy_j / 1e3, 2),
                "energy_saving_pct": round(c.energy_saving_pct, 2),
            }
        )
    return ExperimentResult(
        experiment_id="table5",
        title="NT3 GPU power and energy, original vs optimized (paper Table 5)",
        panels={"": rows},
        paper_claims={
            "max power increase %": 68.77,
            "max energy saving %": 55.93,
        },
        measured={
            "max power increase %": max(r["power_increase_pct"] for r in rows),
            "max energy saving %": max(r["energy_saving_pct"] for r in rows),
        },
        notes="Average power rises because low-power loading shrinks; energy falls with runtime.",
    )
