"""Experiment result container and registry."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

from repro.analysis.report import format_table

__all__ = ["ExperimentResult", "run_experiment", "list_experiments"]


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    ``panels`` maps a panel label (e.g. "a: performance", "b: accuracy")
    to its rows; single-panel experiments use the label "".
    """

    experiment_id: str
    title: str
    panels: Dict[str, List[dict]]
    paper_claims: Dict[str, float] = field(default_factory=dict)
    measured: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def rows(self, panel: str = "") -> List[dict]:
        try:
            return self.panels[panel]
        except KeyError:
            raise KeyError(
                f"no panel {panel!r}; panels: {sorted(self.panels)}"
            ) from None

    def render(self) -> str:
        """Human-readable text of the whole experiment."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for label, rows in self.panels.items():
            parts.append(format_table(rows, title=f"[{label}]" if label else ""))
        if self.paper_claims:
            claim_rows = [
                {
                    "metric": key,
                    "paper": self.paper_claims[key],
                    "measured": round(self.measured.get(key, float("nan")), 2),
                }
                for key in self.paper_claims
            ]
            parts.append(format_table(claim_rows, title="[paper vs measured]"))
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n\n".join(parts)


_REGISTRY: Dict[str, str] = {
    "table1": "repro.experiments.table1",
    "fig6": "repro.experiments.fig06",
    "table2": "repro.experiments.table2",
    "fig7": "repro.experiments.fig07",
    "fig8": "repro.experiments.fig08",
    "fig9": "repro.experiments.fig09",
    "fig10": "repro.experiments.fig10",
    "table3": "repro.experiments.table3",
    "table4": "repro.experiments.table4",
    "fig11": "repro.experiments.fig11",
    "table5": "repro.experiments.table5",
    "fig12": "repro.experiments.fig12",
    "fig13": "repro.experiments.fig13",
    "fig14": "repro.experiments.fig14",
    "fig15": "repro.experiments.fig15",
    "fig16": "repro.experiments.fig16",
    "fig17": "repro.experiments.fig17",
    "p1b3_opt": "repro.experiments.p1b3_opt",
    "fig18": "repro.experiments.fig18",
    "fig19": "repro.experiments.fig19",
    "table6": "repro.experiments.table6",
    "fig20": "repro.experiments.fig20",
    "fig21": "repro.experiments.fig21",
    "calibration": "repro.experiments.calibration_exp",
    "ablation_fusion": "repro.experiments.ablations:run_fusion",
    "ablation_collectives": "repro.experiments.ablations:run_collectives",
    "ablation_lr": "repro.experiments.ablations:run_lr_scaling",
    "ablation_nccl": "repro.experiments.ablations:run_nccl_upgrade",
    "ablation_overlap": "repro.experiments.ablations:run_overlap",
    "p2p3_extension": "repro.experiments.p2p3_extension",
    "efficiency": "repro.experiments.efficiency",
    "ps_baseline": "repro.experiments.ps_baseline",
    "noise_scale": "repro.experiments.noise_scale_exp",
    "checkpoint_interval": "repro.experiments.checkpoint_interval",
    "ingest": "repro.experiments.ingest_sweep",
}


def list_experiments() -> List[str]:
    """All experiment ids, paper order."""
    return list(_REGISTRY)


def run_experiment(experiment_id: str, fast: bool = True, **kwargs) -> ExperimentResult:
    """Run one experiment by id (e.g. 'fig6', 'table3')."""
    try:
        module_name = _REGISTRY[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {list(_REGISTRY)}"
        ) from None
    if ":" in module_name:
        module_name, fn_name = module_name.split(":", 1)
    else:
        fn_name = "run"
    module = importlib.import_module(module_name)
    return getattr(module, fn_name)(fast=fast, **kwargs)
