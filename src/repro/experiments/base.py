"""Experiment result container, typed run configuration, and registry.

Experiments are invoked by id through :func:`run_experiment`. The knobs
every experiment understands — ``fast``, ``seed``, ``machine``,
``nworkers``, ``method``, ``collective`` — live on one typed
:class:`ExperimentConfig`; experiment-specific parameters ride in its
``extra`` mapping. Experiment modules that accept ``config=`` get the
object directly; older modules keep their flat keyword signatures and
the dispatcher splats the config back into them, so both calling styles
(``run_experiment("fig7", config=cfg)`` and the historical
``run_experiment("fig7", fast=True, nworkers=384)``) reach every
experiment.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.analysis.report import format_table

__all__ = [
    "ExperimentResult",
    "ExperimentConfig",
    "run_experiment",
    "list_experiments",
]


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    ``panels`` maps a panel label (e.g. "a: performance", "b: accuracy")
    to its rows; single-panel experiments use the label "".
    """

    experiment_id: str
    title: str
    panels: Dict[str, List[dict]]
    paper_claims: Dict[str, float] = field(default_factory=dict)
    measured: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def rows(self, panel: str = "") -> List[dict]:
        try:
            return self.panels[panel]
        except KeyError:
            raise KeyError(
                f"no panel {panel!r}; panels: {sorted(self.panels)}"
            ) from None

    def render(self) -> str:
        """Human-readable text of the whole experiment."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for label, rows in self.panels.items():
            parts.append(format_table(rows, title=f"[{label}]" if label else ""))
        if self.paper_claims:
            claim_rows = [
                {
                    "metric": key,
                    "paper": self.paper_claims[key],
                    "measured": round(self.measured.get(key, float("nan")), 2),
                }
                for key in self.paper_claims
            ]
            parts.append(format_table(claim_rows, title="[paper vs measured]"))
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n\n".join(parts)


@dataclass(frozen=True)
class ExperimentConfig:
    """Typed configuration shared by every experiment.

    ``None`` means "use the experiment's own default" for that knob —
    the dispatcher only forwards explicitly-set values, so experiments
    keep their per-figure defaults (e.g. fig7's 384 workers).
    """

    fast: bool = True
    seed: Optional[int] = None
    machine: Optional[str] = None
    nworkers: Optional[int] = None
    method: Optional[str] = None
    #: a :class:`repro.comms.CollectiveOptions` for runs that reduce
    collective: Optional[Any] = None
    #: a DVFS power-state name (e.g. "p2") on the machine's frequency
    #: ladder, for experiments that pin or sweep the device clock
    frequency: Optional[str] = None
    #: experiment-specific keywords, forwarded verbatim
    extra: Mapping[str, Any] = field(default_factory=dict)

    _KNOWN = (
        "fast",
        "seed",
        "machine",
        "nworkers",
        "method",
        "collective",
        "frequency",
    )

    @classmethod
    def from_kwargs(cls, fast: bool = True, **kwargs) -> "ExperimentConfig":
        """Build a config from a flat keyword dict (the legacy style)."""
        known = {k: kwargs.pop(k) for k in cls._KNOWN[1:] if k in kwargs}
        return cls(fast=fast, extra=dict(kwargs), **known)

    def legacy_kwargs(self) -> Dict[str, Any]:
        """The flat keyword form: set knobs + extras, ``fast`` excluded."""
        out = {
            name: getattr(self, name)
            for name in self._KNOWN[1:]
            if getattr(self, name) is not None
        }
        out.update(self.extra)
        return out

    def evolve(self, **changes) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return ExperimentConfig(**current)


_REGISTRY: Dict[str, str] = {
    "table1": "repro.experiments.table1",
    "fig6": "repro.experiments.fig06",
    "table2": "repro.experiments.table2",
    "fig7": "repro.experiments.fig07",
    "fig8": "repro.experiments.fig08",
    "fig9": "repro.experiments.fig09",
    "fig10": "repro.experiments.fig10",
    "table3": "repro.experiments.table3",
    "table4": "repro.experiments.table4",
    "fig11": "repro.experiments.fig11",
    "table5": "repro.experiments.table5",
    "fig12": "repro.experiments.fig12",
    "fig13": "repro.experiments.fig13",
    "fig14": "repro.experiments.fig14",
    "fig15": "repro.experiments.fig15",
    "fig16": "repro.experiments.fig16",
    "fig17": "repro.experiments.fig17",
    "p1b3_opt": "repro.experiments.p1b3_opt",
    "fig18": "repro.experiments.fig18",
    "fig19": "repro.experiments.fig19",
    "table6": "repro.experiments.table6",
    "fig20": "repro.experiments.fig20",
    "fig21": "repro.experiments.fig21",
    "calibration": "repro.experiments.calibration_exp",
    "ablation_fusion": "repro.experiments.ablations:run_fusion",
    "ablation_collectives": "repro.experiments.ablations:run_collectives",
    "ablation_lr": "repro.experiments.ablations:run_lr_scaling",
    "ablation_nccl": "repro.experiments.ablations:run_nccl_upgrade",
    "ablation_overlap": "repro.experiments.ablations:run_overlap",
    "p2p3_extension": "repro.experiments.p2p3_extension",
    "efficiency": "repro.experiments.efficiency",
    "ps_baseline": "repro.experiments.ps_baseline",
    "noise_scale": "repro.experiments.noise_scale_exp",
    "checkpoint_interval": "repro.experiments.checkpoint_interval",
    "ingest": "repro.experiments.ingest_sweep",
    "energy_search": "repro.experiments.energy_search",
}


def list_experiments() -> List[str]:
    """All experiment ids, paper order."""
    return list(_REGISTRY)


def run_experiment(
    experiment_id: str,
    fast: bool = True,
    *,
    config: Optional[ExperimentConfig] = None,
    **kwargs,
) -> ExperimentResult:
    """Run one experiment by id (e.g. 'fig6', 'table3').

    Pass either a typed ``config=`` or the historical flat keywords
    (``nworkers=384, method="sharded"``); flat keywords are folded into
    an :class:`ExperimentConfig` and both styles dispatch identically.
    Experiments whose ``run`` accepts ``config`` receive the object;
    the rest receive the equivalent flat keywords.
    """
    try:
        module_name = _REGISTRY[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {list(_REGISTRY)}"
        ) from None
    if config is not None and kwargs:
        raise TypeError(
            "pass either config= or flat keyword arguments, not both"
        )
    if config is None:
        config = ExperimentConfig.from_kwargs(fast=fast, **kwargs)
    if ":" in module_name:
        module_name, fn_name = module_name.split(":", 1)
    else:
        fn_name = "run"
    module = importlib.import_module(module_name)
    fn = getattr(module, fn_name)
    if "config" in inspect.signature(fn).parameters:
        return fn(config=config)
    return fn(fast=config.fast, **config.legacy_kwargs())
