"""Extension: the parallel methodology applied to Pilot2/Pilot3.

§1: "This parallelization method can be applied to other CANDLE
benchmarks such as the P2 and P3 benchmarks in a similar way." The
paper never shows it; this experiment does — the P2B1 molecular
autoencoder and P3B1 report classifier run through the *same* scaling
plans, Horovod runner, and simulator, unchanged:

- panel a: simulated strong scaling + optimized-loader improvement;
- panel b: real 2-worker training with rank-consistent results and
  decreasing loss.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.energy import compare_runs
from repro.candle import get_benchmark
from repro.core.parallel import run_parallel_benchmark
from repro.core.scaling import strong_scaling_plan
from repro.experiments.base import ExperimentResult
from repro.sim.runner import ScaledRunSimulator


def run(fast: bool = True) -> ExperimentResult:
    sim = ScaledRunSimulator("summit")
    sim_rows = []
    for name in ("p2b1", "p3b1"):
        spec = get_benchmark(name).spec
        for n in (6, 24, 96):
            plan = strong_scaling_plan(spec, n)
            orig = sim.run(spec, plan, method="original", keep_profiles=False)
            opt = sim.run(spec, plan, method="chunked", keep_profiles=False)
            comp = compare_runs(orig, opt)
            sim_rows.append(
                {
                    "benchmark": spec.name,
                    "workers": n,
                    "orig_total_s": round(orig.total_s, 1),
                    "opt_total_s": round(opt.total_s, 1),
                    "perf_impr_pct": round(comp.performance_improvement_pct, 1),
                }
            )

    func_rows = []
    consistent = True
    learned = True
    for name, scale, ss in (("p2b1", 0.05, 0.05), ("p3b1", 0.2, 0.1)):
        bench = get_benchmark(name, scale=scale, sample_scale=ss)
        plan = strong_scaling_plan(bench.spec, 2, total_epochs=8 if fast else 16)
        res = run_parallel_benchmark(bench, plan, seed=5)
        losses = [r.eval_metrics["loss"] for r in res.ranks]
        hist = res.history["loss"]
        consistent &= max(losses) - min(losses) < 1e-9
        learned &= hist[-1] < hist[0]
        func_rows.append(
            {
                "benchmark": bench.spec.name,
                "workers": 2,
                "epochs_per_worker": plan.epochs_per_worker,
                "first_loss": round(hist[0], 4),
                "final_loss": round(hist[-1], 4),
                "ranks_consistent": max(losses) - min(losses) < 1e-9,
            }
        )

    return ExperimentResult(
        experiment_id="p2p3_extension",
        title="P2/P3 benchmarks under the same methodology (paper §1 claim)",
        panels={"a: simulated scaling": sim_rows, "b: real parallel training": func_rows},
        paper_claims={
            "methodology applies unchanged (consistent ranks)": 1.0,
            "parallel training still learns": 1.0,
        },
        measured={
            "methodology applies unchanged (consistent ranks)": float(consistent),
            "parallel training still learns": float(learned),
        },
        notes="P2B1/P3B1 are extensions built for this claim; their specs are "
        "CANDLE-shaped but not part of the paper's Table 1.",
    )
