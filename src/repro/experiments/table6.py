"""Table 6: NT3 weak scaling — accuracy, time/epoch, average GPU power.

Paper claims carried by this table:

- training accuracy stays ~1.0 at 8 epochs/GPU regardless of worker
  count (both original and optimized — the fix is I/O-only);
- time/epoch grows from 10.30 s (sequential) to >3x on 3,072 GPUs,
  "caused mainly by the allreduce operations using NCCL_Allreduce";
- the optimized runs show higher average GPU power (less low-power
  loading time).
"""

from __future__ import annotations

from repro.candle.nt3 import NT3_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    counts = (6, 96, 768, 3072) if fast else common.WEAK_GPUS
    comparisons = common.comparison_sweep(NT3_SPEC, "summit", counts, mode="weak")
    reports = common.sim_sweep(NT3_SPEC, "summit", counts, mode="weak")
    rows = []
    for n, comp, rep in zip(counts, comparisons, reports):
        rows.append(
            {
                "gpus": n,
                "time_per_epoch_s": round(rep.time_per_epoch_s, 2),
                "orig_power_w": round(comp.original_power_w, 1),
                "opt_power_w": round(comp.optimized_power_w, 1),
            }
        )

    # accuracy at 8 epochs/GPU is worker-count independent in expectation;
    # verify with real training at two nominal counts
    acc_rows = []
    for n in (6, 3072) if fast else (6, 96, 768, 3072):
        m = common.accuracy_point(
            "nt3", n, epochs_per_worker=8, scale=0.004 if fast else 0.008
        )
        acc_rows.append(
            {"gpus": n, "epochs_per_gpu": 8, "accuracy": round(m.get("accuracy", 0.0), 3)}
        )

    per_epoch_seq = 10.29  # calibrated 1-GPU value
    per_epoch_3072 = rows[-1]["time_per_epoch_s"]
    return ExperimentResult(
        experiment_id="table6",
        title="NT3 weak scaling: accuracy, time/epoch, GPU power (paper Table 6)",
        panels={"time & power": rows, "accuracy (8 epochs/GPU)": acc_rows},
        paper_claims={
            "time/epoch at 3072 > 3x sequential": 1.0,
            "accuracy ~1.0 at 8 epochs/GPU": 1.0,
            "optimized power > original": 1.0,
        },
        measured={
            "time/epoch at 3072 > 3x sequential": float(
                per_epoch_3072 > 3 * per_epoch_seq
            ),
            "accuracy ~1.0 at 8 epochs/GPU": min(r["accuracy"] for r in acc_rows),
            "optimized power > original": float(
                all(r["opt_power_w"] > r["orig_power_w"] for r in rows)
            ),
        },
    )
