"""Table 4: data-loading seconds by method and file, on Theta."""

from __future__ import annotations

from repro.cluster.machine import THETA
from repro.experiments.base import ExperimentResult
from repro.experiments.table3 import model_rows

PAPER_TABLE4 = {
    "NT3": {"train_original": 52.91, "train_chunked": 13.84, "test_original": 13.93, "test_chunked": 3.62},
    "P1B1": {"train_original": 139.71, "train_chunked": 27.43, "test_original": 48.38, "test_chunked": 11.67},
    "P1B2": {"train_original": 25.07, "train_chunked": 9.53, "test_original": 9.56, "test_chunked": 4.40},
    "P1B3": {"train_original": 4.74, "train_chunked": 4.53, "test_original": 2.79, "test_chunked": 2.49},
}


def run(fast: bool = True) -> ExperimentResult:
    rows = model_rows(THETA, PAPER_TABLE4)
    claims, measured = {}, {}
    for row in rows:
        claims[f"{row['benchmark']} speedup"] = row["speedup_paper"]
        measured[f"{row['benchmark']} speedup"] = row["speedup_model"]
    return ExperimentResult(
        experiment_id="table4",
        title="Data-loading performance by method on Theta (paper Table 4)",
        panels={"": rows},
        paper_claims=claims,
        measured=measured,
        notes=(
            "Single-client loads are *faster* on Theta than Summit (Tables 3 "
            "vs 4); it is contention at scale that inverts the comparison."
        ),
    )
