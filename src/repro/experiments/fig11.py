"""Figure 11: NT3 original vs optimized total time on Summit.

The optimized (chunked, low_memory=False) loader cuts data loading >=5x;
the paper reports up to 67.68% total-runtime improvement."""

from __future__ import annotations

from repro.candle.nt3 import NT3_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import improvement_experiment


def run(fast: bool = True) -> ExperimentResult:
    counts = common.STRONG_GPUS
    if fast:
        counts = common.thin(counts)
    return improvement_experiment(
        "fig11",
        "NT3 on Summit: original vs optimized (paper Fig 11 + Table 5 context)",
        NT3_SPEC,
        "summit",
        counts,
        mode="strong",
        paper_perf_max=67.68,
        paper_energy_max=55.93,
        notes='Improvement grows with GPU count as loading dominates.',
    )
