"""Figure 6: Horovod NT3 on Summit under strong scaling.

(a) Time series vs GPU count: "TensorFlow" (training+cross-validation)
    for batch 20, total runtime for batch 40, and data-loading time —
    the panel whose message is "on 48 GPUs or more, the data-loading
    time dominates the total runtime".
(b) Training accuracy vs GPU count for batch 20 and 40: accuracy holds
    at 1.0 down to 8 epochs/GPU (48 GPUs for batch 20) and collapses
    below; batch 40 collapses earlier.
"""

from __future__ import annotations

from repro.candle.nt3 import NT3_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult


def time_rows(counts) -> list[dict]:
    b20 = common.sim_sweep(NT3_SPEC, "summit", counts, method="original", batch_size=20)
    b40 = common.sim_sweep(NT3_SPEC, "summit", counts, method="original", batch_size=40)
    rows = []
    for n, r20, r40 in zip(counts, b20, b40):
        rows.append(
            {
                "gpus": n,
                "epochs_per_gpu": r20.plan.epochs_per_worker,
                "tensorflow_s_b20": round(r20.train_s, 1),
                "total_s_b20": round(r20.total_s, 1),
                "total_s_b40": round(r40.total_s, 1),
                "data_loading_s": round(r20.load_s, 1),
                "loading_dominates": r20.load_s > r20.train_s,
            }
        )
    return rows


def accuracy_rows(counts, fast: bool) -> list[dict]:
    scale = 0.004 if fast else 0.008
    rows = []
    for n in counts:
        point = {"gpus": n}
        for batch in (20, 40):
            m = common.accuracy_point(
                "nt3", n, total_epochs=NT3_SPEC.epochs, batch_size=batch, scale=scale
            )
            point[f"accuracy_b{batch}"] = round(m.get("accuracy", 0.0), 3)
            point["epochs_per_gpu"] = m["epochs_per_worker"]
        rows.append(point)
    return rows


def run(fast: bool = True) -> ExperimentResult:
    counts = common.STRONG_GPUS
    acc_counts = (24, 48, 96, 384) if fast else (6, 12, 24, 48, 96, 192, 384)
    t_rows = time_rows(counts)
    a_rows = accuracy_rows(acc_counts, fast)
    first_dominated = next((r["gpus"] for r in t_rows if r["loading_dominates"]), None)
    acc48 = next((r for r in a_rows if r["gpus"] == 48), a_rows[0])
    return ExperimentResult(
        experiment_id="fig6",
        title="Horovod NT3 on Summit: strong scaling (paper Fig 6)",
        panels={"a: performance": t_rows, "b: training accuracy": a_rows},
        paper_claims={
            "loading dominates from N GPUs": 48,
            "accuracy at 8 epochs/GPU (48 GPUs, b20)": 1.0,
        },
        measured={
            "loading dominates from N GPUs": float(first_dominated or -1),
            "accuracy at 8 epochs/GPU (48 GPUs, b20)": acc48["accuracy_b20"],
        },
        notes=(
            "Accuracy panel runs real training at reduced feature scale; "
            "epochs/GPU and the linear LR rule follow the nominal GPU count."
        ),
    )
