"""Figure 18: NT3 weak scaling (8 epochs/GPU) on up to 3,072 GPUs.

The paper reports 34.23-52.44% time improvement and 22.31-28.59% energy
saving, with the improvement percentage shrinking as Horovod allreduce
overhead grows with GPU count."""

from __future__ import annotations

from repro.candle.nt3 import NT3_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import improvement_experiment


def run(fast: bool = True) -> ExperimentResult:
    counts = common.WEAK_GPUS
    if fast:
        counts = common.thin(counts)
    return improvement_experiment(
        "fig18",
        "NT3 weak scaling on Summit, 6-3,072 GPUs (paper Fig 18)",
        NT3_SPEC,
        "summit",
        counts,
        mode="weak",
        paper_perf_max=52.44,
        paper_energy_max=28.59,
        paper_perf_min=34.23,
        paper_energy_min=22.31,
        notes='Allreduce overhead grows with GPU count, diluting the loading win.',
    )
