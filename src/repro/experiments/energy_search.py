"""Energy-optimal configuration search (energy-aware runtime, §5-6).

The paper reports what one configuration change (the pandas fix) does
to time and energy; Huber et al. show parallelism and communication
choices move joules *independently* of seconds. This experiment closes
the loop: given a benchmark and a machine, sweep the runtime's whole
operating space — worker count × batch-scaling rule × collective
algorithm × DVFS frequency — through the calibrated simulator and
report

- the **Pareto frontier** of total energy vs time-to-solution (strong
  scaling holds the total epoch budget fixed, so every point buys the
  same nominal training work — the time axis is time-to-accuracy),
- the **EDP-optimal** configuration against the *max-frequency
  reference* (the paper's own operating point: nominal clocks, no
  batch scaling, automatic collective selection), and
- the paper's Tables 4-6 **shape** (original vs optimized loading,
  with the power-up/energy-down signature) on the same rank grid.

On Theta the search correctly *refuses* to down-clock — KNL's 140 W
idle floor makes race-to-idle optimal — and wins through scale and
batch shape instead; on Summit the V100's wide dynamic range makes the
lower rungs genuinely EDP-optimal. Both answers fall out of the same
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.energy import compare_runs, pareto_front
from repro.candle.base import BenchmarkSpec
from repro.candle.registry import get_benchmark
from repro.cluster.machine import get_machine
from repro.comms import CollectiveOptions
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import plan_for
from repro.sim.report import improvement_percent
from repro.sim.runner import ScaledRunSimulator

__all__ = [
    "EnergyPoint",
    "sweep_energy_configs",
    "reference_point",
    "run",
]

#: rank grids: Theta goes to the paper's full 3,072-node scale, where
#: Lustre contention makes the loading (and therefore energy) story
#: starkest; Summit stays on the strong-scaling GPU grid
THETA_COUNTS = (96, 192, 384, 768, 1536, 3072)
SUMMIT_COUNTS = (24, 48, 96, 192, 384)

#: batch rules swept ("linear" excluded by default: the paper shows it
#: wrecks both accuracy and, via load imbalance, time at scale)
DEFAULT_STRATEGIES = ("none", "sqrt", "cubic")

DEFAULT_ALGORITHMS = ("auto", "ring", "hierarchical")

#: max-frequency reference worker count (the paper's Fig 13 top end)
REFERENCE_WORKERS = 384


@dataclass(frozen=True)
class EnergyPoint:
    """One swept configuration and its simulated cost."""

    machine: str
    benchmark: str
    nworkers: int
    batch_strategy: str
    algorithm: str
    power_state: str
    frequency_ghz: float
    batch_size: int
    epochs_per_worker: int
    total_s: float
    total_energy_j: float
    avg_power_w: float

    @property
    def edp_j_s(self) -> float:
        return self.total_energy_j * self.total_s

    def as_row(self) -> dict:
        return {
            "workers": self.nworkers,
            "batch_rule": self.batch_strategy,
            "algorithm": self.algorithm,
            "state": self.power_state,
            "freq_ghz": round(self.frequency_ghz, 2),
            "batch": self.batch_size,
            "total_s": round(self.total_s, 1),
            "energy_mj": round(self.total_energy_j / 1e6, 3),
            "avg_power_w": round(self.avg_power_w, 1),
            "edp_gj_s": round(self.edp_j_s / 1e9, 3),
        }

    def config_label(self) -> str:
        return (
            f"{self.nworkers}w/{self.batch_strategy}/"
            f"{self.algorithm}/{self.power_state}"
        )


def _point(
    sim: ScaledRunSimulator,
    spec: BenchmarkSpec,
    nworkers: int,
    batch_strategy: str,
    algorithm: str,
    method: str,
    seed: int,
) -> EnergyPoint:
    plan = plan_for(spec, nworkers, mode="strong", batch_strategy=batch_strategy)
    report = sim.run(spec, plan, method=method, seed=seed, keep_profiles=False)
    state = sim.power_state
    return EnergyPoint(
        machine=sim.machine.name,
        benchmark=spec.name,
        nworkers=nworkers,
        batch_strategy=batch_strategy,
        algorithm=algorithm,
        power_state=state.name if state else "nominal",
        frequency_ghz=state.frequency_ghz if state else 0.0,
        batch_size=plan.batch_size,
        epochs_per_worker=plan.epochs_per_worker,
        total_s=report.total_s,
        total_energy_j=report.total_energy_j,
        avg_power_w=report.avg_power_w,
    )


def sweep_energy_configs(
    spec: BenchmarkSpec,
    machine: str,
    counts: Sequence[int],
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    states: Optional[Sequence[str]] = None,
    method: str = "cached",
    seed: int = 0,
) -> List[EnergyPoint]:
    """Simulate every configuration in the cross product.

    ``states`` names rungs of the machine's frequency ladder (None =
    the whole ladder). One simulator per (algorithm, state) pair prices
    every plan, so the sweep cost stays linear in the grid size.
    """
    machine_spec = get_machine(machine)
    if states is None:
        states = machine_spec.frequency_ladder().names
    points = []
    for algorithm in algorithms:
        options = CollectiveOptions(algorithm=algorithm)
        for state in states:
            sim = ScaledRunSimulator(
                machine_spec, collective=options, power_state=state
            )
            for nworkers in counts:
                for strategy in strategies:
                    points.append(
                        _point(sim, spec, nworkers, strategy, algorithm, method, seed)
                    )
    return points


def reference_point(
    spec: BenchmarkSpec,
    machine: str,
    nworkers: int = REFERENCE_WORKERS,
    method: str = "cached",
    seed: int = 0,
) -> EnergyPoint:
    """The max-frequency reference: the paper's own operating point.

    Nominal (top-of-ladder) clocks, no batch scaling, automatic
    collective selection. "Beats max-frequency EDP by N%" means beating
    *this* config — the one every run in the paper implicitly uses.
    """
    machine_spec = get_machine(machine)
    top = machine_spec.frequency_ladder().max_state
    sim = ScaledRunSimulator(machine_spec, power_state=top)
    return _point(sim, spec, nworkers, "none", "auto", method, seed)


def _frontier(points: Sequence[EnergyPoint]) -> List[EnergyPoint]:
    return pareto_front(
        points, x=lambda p: p.total_s, y=lambda p: p.total_energy_j
    )


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """The registered experiment: sweep, frontier, EDP, paper shape."""
    config = config if config is not None else ExperimentConfig()
    machine = config.machine or "theta"
    benchmark = config.extra.get("benchmark", "nt3")
    spec = get_benchmark(benchmark).spec
    method = config.method or "cached"
    seed = config.seed if config.seed is not None else 0
    counts = tuple(
        config.extra.get(
            "counts", THETA_COUNTS if machine == "theta" else SUMMIT_COUNTS
        )
    )
    strategies = tuple(config.extra.get("strategies", DEFAULT_STRATEGIES))
    algorithms = tuple(config.extra.get("algorithms", DEFAULT_ALGORITHMS))
    ladder = get_machine(machine).frequency_ladder()
    states = (
        (config.frequency,) if config.frequency is not None else ladder.names
    )
    if config.fast:
        counts = counts[::2] if len(counts) > 3 else counts
        strategies = strategies[:2]
        algorithms = algorithms[:2]
        if config.frequency is None:
            states = (ladder.min_state.name, ladder.max_state.name)

    points = sweep_energy_configs(
        spec,
        machine,
        counts,
        strategies=strategies,
        algorithms=algorithms,
        states=states,
        method=method,
        seed=seed,
    )
    ref_workers = config.nworkers or (
        REFERENCE_WORKERS if REFERENCE_WORKERS in counts else counts[-1]
    )
    ref = reference_point(spec, machine, ref_workers, method=method, seed=seed)
    frontier = _frontier(points)
    best = min(points, key=lambda p: p.edp_j_s)
    edp_improvement = improvement_percent(ref.edp_j_s, best.edp_j_s)

    # the paper's Tables 4-6 shape on the same grid: original loading vs
    # this sweep's method, with the power-up/energy-down signature
    sim = ScaledRunSimulator(machine)
    shape_rows = []
    for n in counts:
        plan = plan_for(spec, n, mode="strong")
        orig = sim.run(spec, plan, method="original", seed=seed, keep_profiles=False)
        opt = sim.run(spec, plan, method=method, seed=seed, keep_profiles=False)
        comp = compare_runs(orig, opt)
        row = comp.as_row()
        row["opt_power_w"] = round(comp.optimized_power_w, 1)
        shape_rows.append(row)

    edp_rows = [
        {"config": "reference (max-freq)", **ref.as_row()},
        {"config": "best EDP", **best.as_row()},
    ]
    return ExperimentResult(
        experiment_id="energy_search",
        title=f"Energy-optimal config search: {spec.name} on {get_machine(machine).name}",
        panels={
            "sweep": [p.as_row() for p in points],
            "pareto frontier (energy vs time-to-accuracy)": [
                p.as_row() for p in frontier
            ],
            "EDP vs max-frequency reference": edp_rows,
            "paper shape (orig vs optimized loading)": shape_rows,
        },
        paper_claims={"max energy saving % (paper ~78 at scale)": 78.0},
        measured={
            "max energy saving % (paper ~78 at scale)": max(
                r["energy_saving_pct"] for r in shape_rows
            ),
            "EDP improvement vs max-frequency %": edp_improvement,
            "frontier size": float(len(frontier)),
        },
        notes=(
            f"best {best.config_label()} vs reference {ref.config_label()}: "
            f"EDP {best.edp_j_s / 1e9:.2f} vs {ref.edp_j_s / 1e9:.2f} GJ·s "
            f"({edp_improvement:.1f}% better). Strong scaling fixes the "
            "total epoch budget, so time is time-to-accuracy; frontier "
            "points differ only in where they sit on the energy/time "
            "trade."
        ),
    )
