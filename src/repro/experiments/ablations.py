"""Ablations of the design choices DESIGN.md calls out.

Not in the paper's evaluation, but each probes a mechanism the paper
leans on:

- **fusion**: Horovod's tensor fusion (§2.2) — per-step allreduce time
  vs fusion-buffer size, including the per-tensor (no fusion) extreme.
- **collectives**: flat ring vs NCCL-style hierarchical allreduce —
  why two-level reduction is required at 3,072 ranks.
- **lr scaling**: the §2.3.2 linear LR rule vs none vs sqrt, by real
  training at fixed epochs.
- **nccl upgrade**: the paper's §7 plan ("upgrade NCCL from 2.3.7 to
  2.4.2 to reduce the communication overhead") — simulated by the
  lower per-hop launch latency the newer NCCL delivers.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.candle.nt3 import NT3_SPEC
from repro.cluster.machine import SUMMIT
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.hvd.fusion import FusionBuffer
from repro.mpi.network import CollectiveCostModel

#: NT3's per-layer gradient tensors (elements), from the CANDLE model:
#: conv1 (128x20x1+128), conv2 (128x10x128+128), dense200 (773760x200+200),
#: dense20 (200x20+20), dense2 (20x2+2)
NT3_LAYER_PARAMS = (2_688, 163_968, 154_752_200, 4_020, 42)


def _allreduce_time(cm: CollectiveCostModel, sizes_bytes, nworkers: int) -> float:
    total = cm.negotiate(nworkers) * 1  # one coordination round per cycle
    for nbytes in sizes_bytes:
        total += cm.allreduce_hierarchical(nbytes, nworkers)
    return total


def run_fusion(fast: bool = True) -> ExperimentResult:
    cm = CollectiveCostModel(SUMMIT.fabric, ranks_per_node=SUMMIT.workers_per_node)
    tensors = {
        f"t{i}": np.zeros(n, dtype=np.float32) for i, n in enumerate(NT3_LAYER_PARAMS)
    }
    rows = []
    for nworkers in (48, 384, 3072):
        row = {"gpus": nworkers}
        # no fusion: one ring op per layer tensor
        per_tensor = [t.nbytes for t in tensors.values()]
        row["per_tensor_ms"] = round(_allreduce_time(cm, per_tensor, nworkers) * 1e3, 2)
        for mb in (8, 64, 512):
            fused = FusionBuffer(mb << 20).fused_sizes(tensors)
            # a group larger than the buffer still rings in buffer-sized pieces
            sizes = []
            for s in fused:
                while s > (mb << 20):
                    sizes.append(mb << 20)
                    s -= mb << 20
                if s:
                    sizes.append(s)
            row[f"fused_{mb}mb_ms"] = round(
                _allreduce_time(cm, sizes, nworkers) * 1e3, 2
            )
        rows.append(row)
    better = all(r["fused_512mb_ms"] <= r["per_tensor_ms"] for r in rows)
    return ExperimentResult(
        experiment_id="ablation_fusion",
        title="Tensor-fusion ablation: per-step allreduce time vs buffer size",
        panels={"": rows},
        paper_claims={"fusion never hurts (bigger buffers <= per-tensor)": 1.0},
        measured={"fusion never hurts (bigger buffers <= per-tensor)": float(better)},
        notes="Latency terms scale with the number of ring operations; fusing "
        "small tensors amortizes them (Horovod §2.2's motivation).",
    )


def run_collectives(fast: bool = True, config=None) -> ExperimentResult:
    """Allreduce algorithms on NT3's gradient, priced via the planner.

    Every column is a :func:`repro.comms.plan_allreduce` schedule on the
    Summit topology — the same plans the functional engine executes —
    compared per worker count; ``config.collective`` (compression,
    chunking) applies to every algorithm column.
    """
    from repro.comms import CollectiveOptions, Topology, plan_allreduce

    if config is not None:
        fast = config.fast
    base = (config.collective if config is not None else None) or CollectiveOptions()
    # charge the gradient in fusion pieces, as the runner does —
    # the per-piece latency terms are what hierarchy amortizes
    nbytes = NT3_SPEC.gradient_bytes
    cap = base.fusion_bytes
    pieces = [cap] * (nbytes // cap)
    if nbytes % cap:
        pieces.append(nbytes % cap)

    def planned(algorithm: str, topo: Topology) -> float:
        opts = base.evolve(algorithm=algorithm)
        return sum(
            plan_allreduce(p, topo, opts).seconds(SUMMIT.fabric) for p in pieces
        )

    rows = []
    for nworkers in (6, 48, 384, 3072):
        topo = Topology.from_machine(SUMMIT, nworkers)
        flat = planned("ring", topo)
        hier = planned("hierarchical", topo)
        rows.append(
            {
                "gpus": nworkers,
                "flat_ring_ms": round(flat * 1e3, 1),
                "hierarchical_ms": round(hier * 1e3, 1),
                "speedup": round(flat / hier, 2) if hier else 1.0,
            }
        )
    # rhd needs a power-of-two world and pays off for latency-bound
    # sizes, so it gets its own panel at the 16 KB coordination scale
    small_rows = []
    for nworkers in (8, 64, 512, 4096):
        topo = Topology.from_machine(SUMMIT, nworkers)
        small = 16 << 10
        ring_s = plan_allreduce(
            small, topo, base.evolve(algorithm="ring")
        ).seconds(SUMMIT.fabric)
        rhd_s = plan_allreduce(
            small, topo, base.evolve(algorithm="rhd")
        ).seconds(SUMMIT.fabric)
        small_rows.append(
            {
                "gpus": nworkers,
                "ring_us": round(ring_s * 1e6, 1),
                "rhd_us": round(rhd_s * 1e6, 1),
                "speedup": round(ring_s / rhd_s, 2) if rhd_s else 1.0,
            }
        )
    return ExperimentResult(
        experiment_id="ablation_collectives",
        title="Flat ring vs rhd vs hierarchical allreduce (NT3 gradient, fused)",
        panels={"": rows, "b: 16 KB message, ring vs rhd": small_rows},
        paper_claims={"hierarchy wins at 3072 GPUs (speedup > 2x)": 1.0},
        measured={
            "hierarchy wins at 3072 GPUs (speedup > 2x)": float(
                rows[-1]["speedup"] > 2.0
            )
        },
        notes="Flat rings pay 2(p-1) per-hop latencies per fused piece; "
        "two-level reduction pays 2(p/6-1) inter-node hops instead. At one "
        "node (6 GPUs) ring and hierarchy are identical; rhd trades "
        "2 ceil(log2 p) rounds for the same bytes (a small-message win); "
        "at thousands of ranks the hierarchy's latency savings dominate.",
    )


def run_lr_scaling(fast: bool = True) -> ExperimentResult:
    from repro.candle import get_benchmark
    from repro.core.parallel import run_parallel_benchmark
    from repro.core.scaling import ScalingPlan
    from repro.core.lr_scaling import scale_learning_rate

    bench = get_benchmark("nt3", scale=0.004 if fast else 0.008, sample_scale=0.5)
    nworkers = 4
    epochs = 4 if fast else 8
    rows = []
    for strategy in ("none", "sqrt", "linear"):
        lr = scale_learning_rate(bench.spec.learning_rate, nworkers, strategy)
        plan = ScalingPlan(
            benchmark="NT3", mode="strong", nworkers=nworkers,
            epochs_per_worker=epochs, batch_size=20, learning_rate=lr,
        )
        res = run_parallel_benchmark(bench, plan, seed=13)
        rows.append(
            {
                "strategy": strategy,
                "lr": round(lr, 5),
                "train_accuracy": round(res.final_train_metric["accuracy"], 3),
                "train_loss": round(res.final_train_metric["loss"], 4),
            }
        )
    by = {r["strategy"]: r for r in rows}
    return ExperimentResult(
        experiment_id="ablation_lr",
        title="Learning-rate scaling ablation (NT3, 4 workers, fixed epochs)",
        panels={"": rows},
        paper_claims={"linear scaling at least matches unscaled": 1.0},
        measured={
            "linear scaling at least matches unscaled": float(
                by["linear"]["train_accuracy"] >= by["none"]["train_accuracy"] - 0.02
            )
        },
        notes="With N-way gradient averaging, unscaled LR under-steps; the "
        "paper's linear rule restores the effective step size.",
    )


def run_nccl_upgrade(fast: bool = True) -> ExperimentResult:
    """§7: upgrading NCCL 2.3.7 → 2.4.2 cuts per-hop launch latency."""
    old_fabric = SUMMIT.fabric
    new_fabric = replace(old_fabric, inter_alpha_s=old_fabric.inter_alpha_s * 0.45)
    nbytes = NT3_SPEC.gradient_bytes
    rows = []
    for nworkers in (384, 768, 3072):
        old_cm = CollectiveCostModel(old_fabric, SUMMIT.workers_per_node)
        new_cm = CollectiveCostModel(new_fabric, SUMMIT.workers_per_node)
        # 64 MB fusion pieces, as the runner charges them
        pieces = [64 << 20] * (nbytes // (64 << 20)) + [nbytes % (64 << 20)]
        old_t = sum(old_cm.allreduce_hierarchical(p, nworkers) for p in pieces if p)
        new_t = sum(new_cm.allreduce_hierarchical(p, nworkers) for p in pieces if p)
        rows.append(
            {
                "gpus": nworkers,
                "nccl_2.3.7_ms": round(old_t * 1e3, 1),
                "nccl_2.4.2_ms": round(new_t * 1e3, 1),
                "reduction_pct": round((1 - new_t / old_t) * 100, 1),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_nccl",
        title="NCCL 2.3.7 -> 2.4.2 upgrade (paper §7 future work)",
        panels={"": rows},
        paper_claims={"upgrade reduces allreduce overhead at 3072 GPUs": 1.0},
        measured={
            "upgrade reduces allreduce overhead at 3072 GPUs": float(
                rows[-1]["reduction_pct"] > 10
            )
        },
        notes="The benefit grows with GPU count because latency terms dominate "
        "at scale — exactly why the paper planned the upgrade.",
    )


def _measure_overlap_row(world: int, local: int, epochs: int) -> dict:
    """Run the PR 7 wait-free scheduler for real and time it.

    An SPMD fit of the small NT3 stack under
    :class:`repro.overlap.OverlapScheduler` on a compute-dilated Summit
    fabric, overlapped vs serialized, same seeds and data. Returns the
    measured speedup and the scheduler's own telemetry fraction
    (hidden comm / total comm, aggregated over ranks).
    """
    import sys
    import time

    from repro import hvd
    from repro.candle import get_benchmark
    from repro.comms import CollectiveOptions
    from repro.mpi import run_spmd
    from repro.nn.optimizers import SGD
    from repro.train import TrainOptions

    bench = get_benchmark("nt3", scale=0.01, sample_scale=0.05)
    batch = 20
    train = TrainOptions(
        overlap=True,
        overlap_channels=4,
        collective=CollectiveOptions(
            fusion_bytes=1 << 16,
            emulate_fabric="summit",
            emulate_fabric_scale=550.0,
        ),
    )
    rng = np.random.default_rng(0)
    x = rng.normal(size=(world * batch, bench.features, 1))
    y = np.eye(2)[rng.integers(0, 2, size=world * batch)]

    def fit(opts):
        def worker(comm):
            hvd.init(comm)
            try:
                model = bench.build_model(seed=1 + comm.rank, train=opts)
                model.compile(
                    hvd.DistributedOptimizer(SGD(lr=0.001), train=opts),
                    "categorical_crossentropy",
                )
                shard = slice(comm.rank * batch, (comm.rank + 1) * batch)
                kw = dict(batch_size=batch, shuffle=False, train=opts)
                model.fit(
                    x[shard], y[shard], epochs=1,
                    callbacks=[hvd.BroadcastGlobalVariablesCallback(0)], **kw,
                )
                t0 = time.perf_counter()
                model.fit(x[shard], y[shard], epochs=epochs, **kw)
                stats = model.last_overlap_stats
                return (
                    time.perf_counter() - t0,
                    stats.hidden_s if stats is not None else 0.0,
                    stats.comm_s if stats is not None else 0.0,
                )
            finally:
                hvd.shutdown()

        return run_spmd(world, worker, local_size=local)

    old_switch = sys.getswitchinterval()
    sys.setswitchinterval(0.001)  # 12 GIL-sharing rank threads
    try:
        over = fit(train)
        serial = fit(train.evolve(overlap=False))
    finally:
        sys.setswitchinterval(old_switch)
    over_s = max(r[0] for r in over)
    serial_s = max(r[0] for r in serial)
    comm = sum(r[2] for r in over)
    return {
        "gpus": world,
        "serialized_s": round(serial_s, 3),
        "overlapped_s": round(over_s, 3),
        "measured_speedup": round(serial_s / over_s, 2),
        "measured_overlap_fraction": round(
            sum(r[1] for r in over) / comm if comm > 0 else 0.0, 3
        ),
    }


def run_overlap(fast: bool = True) -> ExperimentResult:
    """Horovod's communication/computation interleaving (§2.2).

    "A unique feature of Horovod is its ability to interleave
    communication and computation" — this ablation turns the overlap
    off in the simulator and measures what NT3's per-epoch time would
    look like with a naive synchronous schedule. A second panel runs
    the functional :class:`repro.overlap.OverlapScheduler` (PR 7's
    wait-free backprop) on the emulated fabric, so the modeled overlap
    fraction sits next to a measured one.
    """
    from repro.core.scaling import weak_scaling_plan
    from repro.sim.runner import ScaledRunSimulator
    from repro.train import TrainOptions

    with_overlap = ScaledRunSimulator("summit", train=TrainOptions(overlap=True))
    without = ScaledRunSimulator("summit", train=TrainOptions(overlap=False))
    rows = []
    for nworkers in (48, 384, 3072):
        plan = weak_scaling_plan(NT3_SPEC, nworkers)
        a = with_overlap.run(NT3_SPEC, plan, keep_profiles=False)
        b = without.run(NT3_SPEC, plan, keep_profiles=False)
        rows.append(
            {
                "gpus": nworkers,
                "overlapped_s_per_epoch": round(a.time_per_epoch_s, 2),
                "synchronous_s_per_epoch": round(b.time_per_epoch_s, 2),
                "saved_pct": round((1 - a.time_per_epoch_s / b.time_per_epoch_s) * 100, 1),
                "modeled_overlap_fraction": round(a.overlap_fraction, 3),
            }
        )
    helps = all(r["overlapped_s_per_epoch"] <= r["synchronous_s_per_epoch"] for r in rows)
    measured = _measure_overlap_row(
        world=4 if fast else 12,
        local=2 if fast else 6,
        epochs=2 if fast else 6,
    )
    return ExperimentResult(
        experiment_id="ablation_overlap",
        title="Communication/computation overlap ablation (Horovod §2.2)",
        panels={"": rows, "b: measured wait-free scheduler": [measured]},
        paper_claims={
            "overlap never slower than synchronous": 1.0,
            "measured scheduler hides communication": 1.0,
        },
        measured={
            "overlap never slower than synchronous": float(helps),
            "measured scheduler hides communication": float(
                measured["measured_overlap_fraction"] > 0.2
                and measured["measured_speedup"] > 1.0
            ),
        },
        notes="NT3's backward pass is short (~23 ms/step), so only part of "
        "the allreduce hides behind it; larger-compute models overlap more. "
        "Panel b runs the real scheduler on the compute-dilated emulated "
        "fabric (see benchmarks/bench_trainstep.py for the full-world gate).",
    )
