"""Ingest-method sweep: the §5 comparison extended past the paper.

The paper compares ``original`` vs ``chunked`` (vs ``dask``) and stops.
:mod:`repro.ingest` adds three more engines — span-parallel decode, the
binary column-store cache, and per-rank row sharding — and this
experiment sweeps all of them through the calibrated NT3-on-Summit
simulation: per-rank load seconds, total runtime, and how much of the
paper's broadcast skew each mode removes at 384 GPUs.

With ``fast=False`` a functional panel parses real generated files with
every registered method and asserts the frames agree.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.candle.registry import get_benchmark
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import ingest_method_rows
from repro.ingest import DataSource, LoaderConfig
from repro.sim.iomodel import LOAD_METHODS

#: every modeled method, original first (the speedup baseline)
SWEEP_METHODS = LOAD_METHODS


def skew_rows(counts=(48, 96, 192, 384)) -> list[dict]:
    """Broadcast-overhead seconds by method and GPU count (Fig 12 shape)."""
    spec = get_benchmark("nt3").spec
    rows = []
    for n in counts:
        row: dict = {"gpus": n}
        for method in SWEEP_METHODS:
            rep = common.sim_sweep(spec, "summit", [n], method=method)[0]
            row[f"{method}_bcast_s"] = round(rep.broadcast_overhead_s, 2)
        rows.append(row)
    return rows


def functional_rows(scale: float = 0.02, seed: int = 0) -> list[dict]:
    """Actually run every registered method on a generated NT3-shaped file."""
    bench = get_benchmark("nt3", scale=scale, sample_scale=0.1)
    rows = []
    rng = np.random.default_rng(seed)
    with tempfile.TemporaryDirectory() as tmp:
        train, _ = bench.write_files(tmp, rng=rng)
        cache_dir = os.path.join(tmp, "cache")
        ref = None
        for method in DataSource(train).methods():
            config = LoaderConfig(method=method, cache_dir=cache_dir)
            if method == "sharded":
                config = config.with_shard(0, 1)
            result = DataSource(train).load(config)
            if ref is None:
                ref = result.frame
            rows.append(
                {
                    "method": method,
                    "seconds": round(result.seconds, 3),
                    "rows": result.rows,
                    "identical": result.frame.equals(ref),
                }
            )
        # second cached load: the hit path (no text parse at all)
        hit = DataSource(train).load(
            LoaderConfig(method="cached", cache_dir=cache_dir)
        )
        rows.append(
            {
                "method": "cached (hit)",
                "seconds": round(hit.seconds, 3),
                "rows": hit.rows,
                "identical": hit.frame.equals(ref),
            }
        )
    return rows


def run(fast: bool = True) -> ExperimentResult:
    spec = get_benchmark("nt3").spec
    counts = (1, 6, 48, 384) if fast else (1, 6, 12, 24, 48, 96, 192, 384)
    panels = {
        "load/total seconds by method (model, Summit)": ingest_method_rows(
            spec, "summit", counts, SWEEP_METHODS
        ),
        "broadcast overhead by method": skew_rows(
            counts=(48, 384) if fast else (48, 96, 192, 384)
        ),
    }
    if not fast:
        panels["functional (reduced scale)"] = functional_rows()
    model = panels["load/total seconds by method (model, Summit)"]
    at_max = model[-1]
    measured = {
        "chunked speedup at max GPUs": round(
            at_max["original_total_s"] / at_max["chunked_total_s"], 2
        ),
        "best-method speedup at max GPUs": at_max["best_speedup"],
    }
    return ExperimentResult(
        experiment_id="ingest",
        title="Data-ingest methods beyond the paper: parallel, cached, sharded",
        panels=panels,
        paper_claims={},
        measured=measured,
        notes=(
            "The paper's chunked fix is the baseline; span-parallel decode, "
            "the binary column-store cache, and per-rank sharding stack "
            "further load-time and broadcast-skew reductions on top."
        ),
    )
