"""Figure 15: P1B1 original vs optimized on Theta."""

from __future__ import annotations

from repro.candle.p1b1 import P1B1_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import improvement_experiment


def run(fast: bool = True) -> ExperimentResult:
    counts = common.THETA_NODES
    if fast:
        counts = common.thin(counts)
    return improvement_experiment(
        "fig15",
        "P1B1 on Theta: performance and energy (paper Fig 15)",
        P1B1_SPEC,
        "theta",
        counts,
        mode="strong",
        paper_perf_max=45.22,
        paper_energy_max=41.78,
        notes='',
    )
