"""Baseline: parameter server vs Horovod allreduce (paper §1 context).

The paper chooses Horovod because distributed TensorFlow's gRPC
parameter-server path "is difficult to use and optimize". This
experiment makes the comparison quantitative with both of this repo's
modes:

- panel a (cost model): per-step gradient-exchange time for NT3's fused
  gradient under a 1-shard and 4-shard parameter server vs the
  hierarchical ring allreduce, across worker counts — PS grows linearly
  with workers, the ring stays near-flat.
- panel b (functional): a real synchronous PS run and the crossover
  worker count where the ring starts winning.
"""

from __future__ import annotations

import numpy as np

from repro.candle.nt3 import NT3_SPEC
from repro.cluster.machine import SUMMIT
from repro.experiments.base import ExperimentResult
from repro.hvd.fusion import DEFAULT_FUSION_BYTES
from repro.mpi.network import CollectiveCostModel
from repro.ps import PsCostModel, run_parameter_server_training


def _pieces(nbytes: int) -> list[int]:
    out = [DEFAULT_FUSION_BYTES] * (nbytes // DEFAULT_FUSION_BYTES)
    if nbytes % DEFAULT_FUSION_BYTES:
        out.append(nbytes % DEFAULT_FUSION_BYTES)
    return out


def run(fast: bool = True) -> ExperimentResult:
    ring = CollectiveCostModel(SUMMIT.fabric, ranks_per_node=SUMMIT.workers_per_node)
    ps1 = PsCostModel(SUMMIT.fabric, nshards=1)
    ps4 = PsCostModel(SUMMIT.fabric, nshards=4)
    nbytes = NT3_SPEC.gradient_bytes
    pieces = _pieces(nbytes)

    cost_rows = []
    for n in (6, 24, 96, 384, 1536):
        ring_t = sum(ring.allreduce_hierarchical(p, n) for p in pieces)
        cost_rows.append(
            {
                "workers": n,
                "ps_1shard_ms": round(ps1.step_seconds(nbytes, n) * 1e3, 1),
                "ps_4shard_ms": round(ps4.step_seconds(nbytes, n) * 1e3, 1),
                "ring_allreduce_ms": round(ring_t * 1e3, 1),
            }
        )

    # functional sanity: a real sync PS run learns
    rng = np.random.default_rng(0)
    x = rng.normal(size=(120, 6))
    y = np.eye(2)[(x[:, 0] > 0).astype(int)]

    def build():
        from repro.nn import SGD, Activation, Dense, Sequential

        m = Sequential([Dense(5, activation="tanh"), Dense(2), Activation("softmax")])
        m.build((6,), seed=3)
        m.compile(SGD(lr=0.1), "categorical_crossentropy")
        return m

    res = run_parameter_server_training(
        nworkers=3, build_model=build, data=(x, y), steps=15 if fast else 40,
        batch_size=30,
    )
    func_rows = [
        {
            "mode": res.mode,
            "workers": res.num_workers,
            "server_updates": res.server_updates,
            "first_loss": round(float(np.mean(res.losses[:3])), 4),
            "final_loss": round(float(np.mean(res.losses[-3:])), 4),
        }
    ]

    ring384 = cost_rows[3]["ring_allreduce_ms"]
    ps384 = cost_rows[3]["ps_1shard_ms"]
    return ExperimentResult(
        experiment_id="ps_baseline",
        title="Parameter-server baseline vs Horovod ring allreduce (§1)",
        panels={"a: per-step exchange cost": cost_rows, "b: functional sync PS": func_rows},
        paper_claims={
            "ring beats PS at 384 workers (>5x)": 1.0,
            "sync PS still learns": 1.0,
        },
        measured={
            "ring beats PS at 384 workers (>5x)": float(ps384 > 5 * ring384),
            "sync PS still learns": float(
                func_rows[0]["final_loss"] < func_rows[0]["first_loss"]
            ),
        },
        notes="PS traffic funnels 2 x bytes x workers through one endpoint; "
        "the ring moves ~2 x bytes per link regardless of worker count.",
    )
