"""Calibration appendix: every model anchor vs its paper value."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.sim.calibration import calibration_report


def run(fast: bool = True) -> ExperimentResult:
    rows = calibration_report()
    return ExperimentResult(
        experiment_id="calibration",
        title="Model calibration anchors vs paper scalars",
        panels={"": rows},
        paper_claims={r["anchor"]: r["paper"] for r in rows},
        measured={r["anchor"]: r["model"] for r in rows},
        notes="Anchors are the only fitted quantities; all curves derive from them.",
    )
