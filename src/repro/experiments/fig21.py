"""Figure 21: P1B2 weak scaling (8 epochs/GPU): 48.63-56.62% time,
45.86-53.91% energy in the paper."""

from __future__ import annotations

from repro.candle.p1b2 import P1B2_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import improvement_experiment


def run(fast: bool = True) -> ExperimentResult:
    counts = common.WEAK_GPUS
    if fast:
        counts = common.thin(counts)
    return improvement_experiment(
        "fig21",
        "P1B2 weak scaling on Summit (paper Fig 21)",
        P1B2_SPEC,
        "summit",
        counts,
        mode="weak",
        paper_perf_max=56.62,
        paper_energy_max=53.91,
        paper_perf_min=48.63,
        paper_energy_min=45.86,
        notes='',
    )
