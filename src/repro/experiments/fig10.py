"""Figure 10: P1B3 batch-size scaling strategies on Summit.

(a) Times under linear / square-root / cubic-root batch scaling: linear
    is fastest (fewest steps) but *fails* at 192/384 GPUs (batch
    19,200/38,400 exceeds memory); cubic-root is slowest.
(b) Accuracy: cubic root preserves it best; larger batches degrade it.
    "For the given number of GPUs (48), setting the batch size to
    int(100 x 48^(1/3)) = 363 leads to the highest accuracy."
"""

from __future__ import annotations

from repro.candle.p1b3 import P1B3_SPEC
from repro.core.batch_scaling import (
    BatchMemoryError,
    check_batch_fits,
    scale_batch_size,
)
from repro.experiments import common
from repro.experiments.base import ExperimentResult

#: P1B3's MLP activations are modest, but a 38,400-row batch of
#: 1,000-float samples plus activations blows device memory — fitted so
#: the paper's linear-scaling failures at 192/384 GPUs reproduce
P1B3_ACTIVATION_MULTIPLIER = 250.0
P1B3_BATCH_LIMIT_GB = 16.0

STRATEGIES = ("linear", "sqrt", "cubic")


def time_rows(counts) -> list[dict]:
    rows = []
    for n in counts:
        row = {"gpus": n}
        for strategy in STRATEGIES:
            batch = scale_batch_size(P1B3_SPEC.batch_size, n, strategy)
            row[f"batch_{strategy}"] = batch
            try:
                check_batch_fits(
                    batch,
                    P1B3_SPEC.elements_per_sample,
                    P1B3_ACTIVATION_MULTIPLIER,
                    device_mem_gb=P1B3_BATCH_LIMIT_GB,
                )
            except BatchMemoryError:
                row[f"total_s_{strategy}"] = "FAILED (OOM)"
                continue
            reports = common.sim_sweep(
                P1B3_SPEC, "summit", [n], method="original", batch_strategy=strategy
            )
            row[f"total_s_{strategy}"] = round(reports[0].total_s, 1)
        rows.append(row)
    return rows


def accuracy_rows(counts, fast: bool) -> list[dict]:
    sample_scale = 0.01 if fast else 0.05
    rows = []
    for n in counts:
        row = {"gpus": n}
        for strategy in STRATEGIES:
            batch = scale_batch_size(P1B3_SPEC.batch_size, n, strategy)
            m = common.accuracy_point(
                "p1b3",
                n,
                total_epochs=max(4, P1B3_SPEC.epochs * 4),
                batch_size=batch,
                scale=0.05,
                sample_scale=sample_scale,
            )
            # regression "accuracy" reported as R^2-like 1 - loss/var proxy:
            row[f"mae_{strategy}"] = round(m.get("mae", float("nan")), 4)
        rows.append(row)
    return rows


def run(fast: bool = True) -> ExperimentResult:
    counts = (6, 48, 192, 384) if fast else (6, 12, 24, 48, 96, 192, 384)
    t_rows = time_rows(counts)
    a_counts = (6, 48) if fast else (6, 24, 48, 96)
    a_rows = accuracy_rows(a_counts, fast)

    r48 = next(r for r in t_rows if r["gpus"] == 48)
    linear_fails = any(
        isinstance(r.get("total_s_linear"), str) for r in t_rows if r["gpus"] >= 192
    )
    a48 = next((r for r in a_rows if r["gpus"] == 48), a_rows[-1])
    cubic_best = a48["mae_cubic"] <= min(a48["mae_linear"], a48["mae_sqrt"]) + 1e-9
    return ExperimentResult(
        experiment_id="fig10",
        title="P1B3 batch-size scaling strategies (paper Fig 10)",
        panels={"a: performance": t_rows, "b: accuracy (MAE, lower=better)": a_rows},
        paper_claims={
            "linear fastest at 48 GPUs": 1.0,
            "linear fails at 192/384 GPUs": 1.0,
            "cubic root most accurate at 48 GPUs": 1.0,
        },
        measured={
            "linear fastest at 48 GPUs": float(
                r48["total_s_linear"] < r48["total_s_cubic"]
            ),
            "linear fails at 192/384 GPUs": float(linear_fails),
            "cubic root most accurate at 48 GPUs": float(cubic_best),
        },
        notes="P1B3 regression quality reported as training MAE (lower is better).",
    )
