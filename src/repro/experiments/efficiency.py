"""Parallel speedup/efficiency of the training phase (extension).

Classic HPC scalability accounting over the paper's strong-scaling
runs: speedup S(N) = T_train(1)/T_train(N) and efficiency S(N)/N for
the "TensorFlow" phase. The paper shows the raw times (Fig 6a); this
experiment derives the efficiency curve and locates where Horovod
overhead pulls it below 50% — context for the paper's observation that
the allreduce overhead grows with GPU count while the per-GPU work
shrinks.
"""

from __future__ import annotations

from repro.candle.nt3 import NT3_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    counts = (1, 6, 12, 24, 48, 96, 192, 384)
    reports = common.sim_sweep(NT3_SPEC, "summit", counts, method="chunked")
    t1 = reports[0].train_s
    rows = []
    for n, r in zip(counts, reports):
        speedup = t1 / r.train_s
        rows.append(
            {
                "gpus": n,
                "train_s": round(r.train_s, 1),
                "speedup": round(speedup, 2),
                "efficiency_pct": round(speedup / n * 100, 1),
            }
        )
    eff = {r["gpus"]: r["efficiency_pct"] for r in rows}
    monotone_speedup = all(
        rows[i]["speedup"] <= rows[i + 1]["speedup"] + 1e-9 for i in range(len(rows) - 1)
    )
    return ExperimentResult(
        experiment_id="efficiency",
        title="Training-phase speedup and parallel efficiency (NT3, Summit)",
        panels={"": rows},
        paper_claims={
            "speedup monotone in GPUs": 1.0,
            "efficiency decays with scale": 1.0,
        },
        measured={
            "speedup monotone in GPUs": float(monotone_speedup),
            "efficiency decays with scale": float(eff[384] < eff[6] <= eff[1]),
        },
        notes="Efficiency decays because per-GPU epochs shrink while the "
        "per-step allreduce cost grows — the paper's §7 observation about "
        "the 10 s epochs being too small to amortize Horovod overhead.",
    )
