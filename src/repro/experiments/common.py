"""Shared experiment machinery: grids, sweeps, and accuracy runs."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.energy import EnergyComparison, compare_runs
from repro.candle.base import BenchmarkSpec
from repro.candle.registry import get_benchmark
from repro.core.parallel import run_parallel_benchmark
from repro.core.scaling import ScalingPlan, strong_scaling_plan, weak_scaling_plan
from repro.sim.report import SimRunReport
from repro.sim.runner import ScaledRunSimulator

__all__ = [
    "thin",
    "STRONG_GPUS",
    "WEAK_GPUS",
    "THETA_NODES",
    "sim_sweep",
    "comparison_sweep",
    "accuracy_point",
    "plan_for",
]

#: GPU grids the paper sweeps (Figs 6, 8, 9, 10: strong; Figs 18-21: weak)
STRONG_GPUS = (1, 6, 12, 24, 48, 96, 192, 384)
WEAK_GPUS = (6, 12, 24, 48, 96, 192, 384, 768, 1536, 3072)
THETA_NODES = (4, 24, 48, 96, 192, 384)

#: worker-thread cap for functional accuracy runs: gradient averaging
#: saturates quickly, and what controls accuracy is epochs/worker,
#: batch size, and the (linearly scaled) learning rate
MAX_FUNCTIONAL_WORKERS = 4


def plan_for(
    spec: BenchmarkSpec,
    nworkers: int,
    mode: str = "strong",
    batch_size: Optional[int] = None,
    batch_strategy: str = "none",
    epochs_per_worker: Optional[int] = None,
) -> ScalingPlan:
    """Build the paper's plan for one point of a sweep."""
    if mode == "strong":
        return strong_scaling_plan(
            spec, nworkers, batch_strategy=batch_strategy, batch_size=batch_size
        )
    if mode == "weak":
        kwargs = {} if epochs_per_worker is None else {"epochs_per_worker": epochs_per_worker}
        return weak_scaling_plan(
            spec, nworkers, batch_strategy=batch_strategy, batch_size=batch_size, **kwargs
        )
    raise ValueError(f"mode must be strong|weak, got {mode!r}")


def sim_sweep(
    spec: BenchmarkSpec,
    machine: str,
    counts: Sequence[int],
    mode: str = "strong",
    method: str = "original",
    batch_size: Optional[int] = None,
    batch_strategy: str = "none",
    epochs_per_worker: Optional[int] = None,
) -> List[SimRunReport]:
    """Simulate one benchmark across worker counts."""
    sim = ScaledRunSimulator(machine)
    out = []
    for n in counts:
        plan = plan_for(
            spec,
            n,
            mode=mode,
            batch_size=batch_size,
            batch_strategy=batch_strategy,
            epochs_per_worker=epochs_per_worker,
        )
        out.append(sim.run(spec, plan, method=method, keep_profiles=False))
    return out


def comparison_sweep(
    spec: BenchmarkSpec,
    machine: str,
    counts: Sequence[int],
    mode: str = "strong",
    epochs_per_worker: Optional[int] = None,
) -> List[EnergyComparison]:
    """Original-vs-chunked comparisons across worker counts."""
    sim = ScaledRunSimulator(machine)
    out = []
    for n in counts:
        plan = plan_for(spec, n, mode=mode, epochs_per_worker=epochs_per_worker)
        orig = sim.run(spec, plan, method="original", keep_profiles=False)
        opt = sim.run(spec, plan, method="chunked", keep_profiles=False)
        out.append(compare_runs(orig, opt))
    return out


def accuracy_point(
    benchmark_name: str,
    nworkers: int,
    total_epochs: Optional[int] = None,
    epochs_per_worker: Optional[int] = None,
    batch_size: Optional[int] = None,
    scale: float = 0.008,
    sample_scale: float = 1.0,
    seed: int = 7,
) -> dict:
    """Real training at one scaling point; returns final train metrics.

    Thread-worker count is capped at ``MAX_FUNCTIONAL_WORKERS`` while
    epochs/worker and the LR scaling follow the *nominal* worker count —
    the quantities the paper shows accuracy depends on.
    """
    bench = get_benchmark(benchmark_name, scale=scale, sample_scale=sample_scale)
    spec = bench.spec
    total = total_epochs if total_epochs is not None else spec.epochs
    if epochs_per_worker is None:
        epochs_per_worker = max(1, total // nworkers)
    # LR scales with the *physical* averaging width: linear LR scaling is
    # only stable when matched by the same factor of gradient averaging,
    # so the capped functional runs must cap the LR factor too
    lr_factor = min(nworkers, MAX_FUNCTIONAL_WORKERS)
    lr = spec.learning_rate * lr_factor if spec.learning_rate is not None else None
    plan = ScalingPlan(
        benchmark=spec.name,
        mode="strong",
        nworkers=min(nworkers, MAX_FUNCTIONAL_WORKERS),
        epochs_per_worker=epochs_per_worker,
        batch_size=batch_size if batch_size is not None else spec.batch_size,
        learning_rate=lr,
    )
    result = run_parallel_benchmark(bench, plan, seed=seed)
    metrics = dict(result.final_train_metric)
    metrics.pop("epoch_time", None)
    metrics["epochs_per_worker"] = epochs_per_worker
    metrics["nominal_workers"] = nworkers
    return metrics


def thin(counts) -> tuple:
    """Halve a sweep grid for fast mode, always keeping the endpoints."""
    counts = tuple(counts)
    if len(counts) <= 4:
        return counts
    kept = counts[::2]
    if counts[-1] not in kept:
        kept = kept + (counts[-1],)
    return kept
