"""Figure 8: Horovod P1B1 on Summit under strong scaling.

(a) Times for batch 100 (default) and 110; P1B1 "requires at least 4
    epochs (at most 96 GPUs)", and data loading dominates from 24 GPUs.
(b) Training loss for both batch sizes: "the loss increases only
    slightly for both cases" as epochs/GPU shrink.
"""

from __future__ import annotations

from repro.candle.p1b1 import P1B1_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult

#: P1B1 needs >= 4 epochs -> at most 384/4 = 96 GPUs (paper §4.2.2)
P1B1_STRONG_GPUS = (1, 6, 12, 24, 48, 96)


def run(fast: bool = True) -> ExperimentResult:
    counts = P1B1_STRONG_GPUS
    b100 = common.sim_sweep(P1B1_SPEC, "summit", counts, method="original", batch_size=100)
    b110 = common.sim_sweep(P1B1_SPEC, "summit", counts, method="original", batch_size=110)
    t_rows = []
    for n, r100, r110 in zip(counts, b100, b110):
        t_rows.append(
            {
                "gpus": n,
                "epochs_per_gpu": r100.plan.epochs_per_worker,
                "total_s_b100": round(r100.total_s, 1),
                "total_s_b110": round(r110.total_s, 1),
                "data_loading_s": round(r100.load_s, 1),
                "loading_dominates": r100.load_s > r100.train_s,
            }
        )

    loss_counts = (12, 48, 96) if fast else counts
    scale = 0.003 if fast else 0.006
    loss_rows = []
    for n in loss_counts:
        row = {"gpus": n}
        for batch in (100, 110):
            m = common.accuracy_point(
                "p1b1", n, total_epochs=P1B1_SPEC.epochs, batch_size=batch,
                scale=scale, sample_scale=1.0,
            )
            row[f"loss_b{batch}"] = round(m["loss"], 4)
            row["epochs_per_gpu"] = m["epochs_per_worker"]
        loss_rows.append(row)

    first_dominated = next((r["gpus"] for r in t_rows if r["loading_dominates"]), None)
    loss_ratio = loss_rows[-1]["loss_b100"] / max(loss_rows[0]["loss_b100"], 1e-9)
    return ExperimentResult(
        experiment_id="fig8",
        title="Horovod P1B1 on Summit: strong scaling (paper Fig 8)",
        panels={"a: performance": t_rows, "b: training loss": loss_rows},
        paper_claims={
            "loading dominates from N GPUs": 24,
            "loss rises only slightly (ratio < 2)": 1.0,
        },
        measured={
            "loading dominates from N GPUs": float(first_dominated or -1),
            "loss rises only slightly (ratio < 2)": float(loss_ratio < 2.0),
        },
    )
