"""Figure 7: NT3 on 384 GPUs — power over time (a) and Horovod timeline (b).

(a) GPU power per rank sampled at nvidia-smi's 1 Hz over the whole run:
    a long low-power data-loading plateau, an idle negotiate dip, then
    the high-power training band with per-epoch allreduce dips.
(b) The communication timeline: negotiate_broadcast (~43 s — the
    slow-loading ranks gate everyone), mpi_broadcast, then periodic
    negotiate_allreduce / nccl_allreduce during training.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.timeline_analysis import broadcast_overhead_seconds, communication_summary
from repro.candle.nt3 import NT3_SPEC
from repro.cluster.machine import SUMMIT
from repro.cluster.power import PowerMeter
from repro.core.scaling import strong_scaling_plan
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.runner import ScaledRunSimulator


def run(
    fast: bool = True,
    nworkers: int = 384,
    method: str = "original",
    collective=None,
    config: Optional[ExperimentConfig] = None,
) -> ExperimentResult:
    if config is not None:
        fast = config.fast
        nworkers = config.nworkers or nworkers
        method = config.method or method
        collective = config.collective
    sim = ScaledRunSimulator("summit", collective=collective)
    plan = strong_scaling_plan(NT3_SPEC, nworkers)
    report = sim.run(NT3_SPEC, plan, method=method)

    # (a) nvidia-smi-rate samples for the slowest tracked rank
    meter = PowerMeter(SUMMIT.power_sample_hz)
    tracked = max(report.profiles)
    samples = meter.sample(report.profiles[tracked])
    stride = max(1, len(samples) // 40)
    power_rows = [
        {"t_s": round(s.time_s, 1), "power_w": round(s.power_w, 1)}
        for s in samples[::stride]
    ]

    # (b) communication events
    comm = communication_summary(report.timeline)
    names = sorted({k[:-2] for k in comm})
    timeline_rows = [
        {
            "event": name,
            "total_s": round(comm.get(f"{name}_s", 0.0), 2),
            "count": int(comm.get(f"{name}_n", 0)),
        }
        for name in names
    ]
    overhead = broadcast_overhead_seconds(report.timeline)
    return ExperimentResult(
        experiment_id="fig7",
        title=f"NT3 on {nworkers} GPUs: power trace and timeline (paper Fig 7)",
        panels={"a: power samples (slowest rank)": power_rows, "b: timeline summary": timeline_rows},
        paper_claims={
            "data loading s (approx)": 153.0,
            "broadcast overhead s": 43.72,
        },
        measured={
            "data loading s (approx)": round(report.load_s, 1),
            "broadcast overhead s": round(overhead, 2),
        },
        notes="Power is low during loading/broadcast and high during training, as Fig 7a shows.",
    )
