"""§5.4: P1B3 sees only ~6.50% improvement from the optimized loader.

"We expect this small performance improvement because of the small
data-loading improvement for the data sample type" — P1B3's file is
narrow-row, so the low_memory block-management pathology never fires,
and the fix has little to bite on. Run with the paper's cubic-root
batch scaling, as §5.4 does.
"""

from __future__ import annotations

from repro.analysis.energy import compare_runs
from repro.candle.p1b3 import P1B3_SPEC
from repro.core.scaling import strong_scaling_plan
from repro.experiments.base import ExperimentResult
from repro.sim.runner import ScaledRunSimulator


def run(fast: bool = True) -> ExperimentResult:
    counts = (6, 48, 96) if fast else (6, 12, 24, 48, 96)
    rows = []
    best = 0.0
    for machine in ("summit", "theta"):
        sim = ScaledRunSimulator(machine)
        for n in counts:
            plan = strong_scaling_plan(P1B3_SPEC, n, batch_strategy="cubic")
            orig = sim.run(P1B3_SPEC, plan, method="original", keep_profiles=False)
            opt = sim.run(P1B3_SPEC, plan, method="chunked", keep_profiles=False)
            comp = compare_runs(orig, opt)
            if machine == "summit":
                best = max(best, comp.performance_improvement_pct)
            rows.append(
                {
                    "machine": machine,
                    "workers": n,
                    "orig_total_s": round(orig.total_s, 1),
                    "opt_total_s": round(opt.total_s, 1),
                    "perf_improvement_pct": round(comp.performance_improvement_pct, 2),
                }
            )
    return ExperimentResult(
        experiment_id="p1b3_opt",
        title="P1B3 with the optimized loader (paper §5.4)",
        panels={"": rows},
        paper_claims={
            "improvement small (< 7%)": 1.0,
            "max perf improvement % (Summit)": 6.50,
        },
        measured={
            "improvement small (< 7%)": float(best < 7.0),
            "max perf improvement % (Summit)": round(best, 2),
        },
        notes=(
            "Narrow-row files gain little: the fix targets wide-row block "
            "costs. The paper's 6.50% figure is not reconstructible from its "
            "own Table 3 deltas (0.75 s of loading saved) against any full "
            "P1B3 runtime; we reproduce the qualitative claim (small gain)."
        ),
    )
