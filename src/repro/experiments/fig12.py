"""Figure 12: broadcast overhead, original vs optimized (384 GPUs).

"The optimized method results in a significant decrease in the
broadcast overhead, from 43.72 s to 4.65 s, an improvement of 89.36%.
This indicates that the slow data loading delays the data movement."

The mechanism is skew: negotiate_broadcast waits for the slowest
loader, so broadcast overhead scales with (load time x per-rank
spread); shrinking the load shrinks the skew proportionally.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.timeline_analysis import broadcast_overhead_seconds
from repro.candle.nt3 import NT3_SPEC
from repro.core.scaling import strong_scaling_plan
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.report import improvement_percent
from repro.sim.runner import ScaledRunSimulator


def run(
    fast: bool = True,
    nworkers: int = 384,
    collective=None,
    config: Optional[ExperimentConfig] = None,
) -> ExperimentResult:
    if config is not None:
        fast = config.fast
        nworkers = config.nworkers or nworkers
        collective = config.collective
    sim = ScaledRunSimulator("summit", collective=collective)
    plan = strong_scaling_plan(NT3_SPEC, nworkers)
    rows = []
    overheads = {}
    for method in ("original", "chunked"):
        report = sim.run(NT3_SPEC, plan, method=method)
        overhead = broadcast_overhead_seconds(report.timeline)
        overheads[method] = overhead
        rows.append(
            {
                "method": method,
                "load_s": round(report.load_s, 1),
                "negotiate_wait_s": round(report.broadcast_wait_s, 2),
                "mpi_broadcast_s": round(report.broadcast_s, 2),
                "broadcast_overhead_s": round(overhead, 2),
            }
        )
    impr = improvement_percent(overheads["original"], overheads["chunked"])
    return ExperimentResult(
        experiment_id="fig12",
        title=f"NT3 broadcast overhead on {nworkers} GPUs (paper Figs 7b & 12)",
        panels={"": rows},
        paper_claims={
            "original overhead s": 43.72,
            "optimized overhead s": 4.65,
            "overhead improvement %": 89.36,
        },
        measured={
            "original overhead s": round(overheads["original"], 2),
            "optimized overhead s": round(overheads["chunked"], 2),
            "overhead improvement %": round(impr, 2),
        },
    )
