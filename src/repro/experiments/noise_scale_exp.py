"""Extension: gradient-noise-scale rationale for the batch decisions.

§2.3.2 decides by sample count: "We keep the batch size constant for
NT3, P1B1, and P1B2 because of the small number of samples, and we
scale the batch size for P1B3 because of the large number of samples"
— and cites McCandlish et al. [20]. This experiment computes what [20]
actually prescribes: the gradient noise scale B_noise per benchmark
(at reduced scale, real gradients). The prediction that must hold:
P1B3's default batch sits far *below* its B_noise (so scaling it up is
nearly free — Fig 10's linear scaling works), while NT3's default batch
is already near its B_noise (so batch 40 already costs accuracy —
Fig 6b's observation).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.noise_scale import estimate_noise_scale
from repro.candle import get_benchmark
from repro.experiments.base import ExperimentResult


def _estimate_for(name: str, scale: float, sample_scale: float, train_epochs: int, seed: int = 4):
    bench = get_benchmark(name, scale=scale, sample_scale=sample_scale)
    data = bench.synth_arrays(np.random.default_rng(seed))
    model = bench.build_model(seed=seed)
    loss = (
        "categorical_crossentropy"
        if bench.spec.task == "classification"
        else "mse"
    )
    model.compile(bench.spec.optimizer, loss, lr=bench.spec.learning_rate)
    # measure after a little training: at init the loss surface is
    # atypical and the noise scale unstable
    model.fit(
        data.x_train, data.y_train,
        batch_size=bench.effective_batch_size(), epochs=train_epochs,
    )
    n = len(data.x_train)
    b_small = max(2, n // 64)
    b_big = max(b_small * 8, n // 4)
    est = estimate_noise_scale(
        model, data.x_train, data.y_train, b_small, min(b_big, n), draws=8
    )
    return bench, est


def run(fast: bool = True) -> ExperimentResult:
    rows = []
    estimates = {}
    configs = {
        "nt3": dict(scale=0.004, sample_scale=0.5, train_epochs=2 if fast else 4),
        "p1b3": dict(scale=0.05, sample_scale=0.02, train_epochs=1),
    }
    for name, cfg in configs.items():
        bench, est = _estimate_for(name, **cfg)
        estimates[bench.spec.name] = (bench, est)
        rows.append(
            {
                "benchmark": bench.spec.name,
                "train_samples": bench.train_samples,
                "default_batch": bench.spec.batch_size,
                "B_noise": round(est.b_noise, 1),
                "batch/B_noise": round(bench.spec.batch_size / max(est.b_noise, 1e-9), 3),
                "verdict": est.verdict(bench.spec.batch_size),
            }
        )

    nt3_bench, nt3_est = estimates["NT3"]
    p1b3_bench, p1b3_est = estimates["P1B3"]
    nt3_ratio = nt3_bench.spec.batch_size / max(nt3_est.b_noise, 1e-9)
    p1b3_ratio = p1b3_bench.spec.batch_size / max(p1b3_est.b_noise, 1e-9)
    return ExperimentResult(
        experiment_id="noise_scale",
        title="Gradient noise scale vs the paper's batch decisions (ref [20])",
        panels={"": rows},
        paper_claims={
            "P1B3 default batch sits further below B_noise than NT3's": 1.0,
        },
        measured={
            "P1B3 default batch sits further below B_noise than NT3's": float(
                p1b3_ratio < nt3_ratio
            ),
        },
        notes="Computed with real gradients at reduced scale; ratios, not "
        "absolute B_noise values, carry the claim.",
    )
