"""Figure 14: P1B1 original vs optimized on Summit.

P1B1 has the largest files (771 MB + 258 MB) and the biggest win:
up to 78.25% time and 78% energy in the paper."""

from __future__ import annotations

from repro.candle.p1b1 import P1B1_SPEC
from repro.experiments import common
from repro.experiments.base import ExperimentResult
from repro.experiments.improvement import improvement_experiment


def run(fast: bool = True) -> ExperimentResult:
    counts = (6, 12, 24, 48, 96)
    if fast:
        counts = common.thin(counts)
    return improvement_experiment(
        "fig14",
        "P1B1 on Summit: performance and energy (paper Fig 14)",
        P1B1_SPEC,
        "summit",
        counts,
        mode="strong",
        paper_perf_max=78.25,
        paper_energy_max=78.0,
        notes='Energy deviates from the paper: see EXPERIMENTS.md (their energy tracks runtime ~exactly, implying constant-power accounting).',
    )
