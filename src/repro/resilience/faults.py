"""Deterministic fault injection: plans, injectors, injected errors.

The paper's §7 leaves fault tolerance as future work; at 3,072 Theta
ranks a multi-hour job *will* see failures, so the recovery machinery
needs a way to rehearse them. A :class:`FaultPlan` is a seedable,
fully-reproducible schedule of faults — rank crashes at a given epoch
or step, straggler slowdowns, I/O stalls, transient collective
failures — and a :class:`FaultInjector` is the runtime object that
fires them at well-defined hook points:

- ``on_rank_start`` — called by :func:`repro.mpi.run_spmd` for every
  rank before the SPMD function runs (start-up crashes, I/O stalls);
- ``on_epoch_begin`` / ``on_epoch_end`` / ``on_step`` — called by
  :class:`repro.hvd.callbacks.FaultInjectionCallback` during real
  training.

Determinism contract: the same plan applied to the same run fires the
same faults in the same places. Transient faults fire exactly once
(the retried attempt sails past them); ``permanent=True`` crashes fire
on *every* attempt that still schedules the dead rank, which is what
forces :func:`repro.resilience.recovery.run_resilient_benchmark` to
shrink the world.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "ALL_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "TransientCollectiveError",
]

#: the process-level fault taxonomy: process death, slow rank, stalled
#: filesystem, and a failed collective (the NCCL/MPI "unhandled system
#: error" class)
FAULT_KINDS = ("crash", "straggler", "io_stall", "collective")

#: message-level faults, applied by the FT channel
#: (:mod:`repro.comms.ft.channel`) to its own wire traffic: a message
#: lost in flight, corrupted in flight, delayed in flight, or the
#: sending rank dying mid-collective. These are *scheduled* by position
#: (the sender's Nth data message) instead of epoch/step, and the
#: injector never raises for them — it returns the due specs from
#: :meth:`FaultInjector.on_ft_message` and the channel owns the
#: semantics (drop vs corrupt vs sleep vs kill).
MESSAGE_FAULT_KINDS = ("msg_drop", "msg_corrupt", "msg_delay", "rank_kill")

ALL_FAULT_KINDS = FAULT_KINDS + MESSAGE_FAULT_KINDS


class InjectedFault(RuntimeError):
    """Base class for every injector-raised error."""


class InjectedCrash(InjectedFault):
    """A rank process died (injected)."""


class TransientCollectiveError(InjectedFault):
    """A collective operation failed transiently.

    Carries the failure's location — failing chunk index, resolved
    algorithm, peer rank, tensor name — so recovery can target the
    retransmit/demotion instead of replaying the whole run. Raisers
    that know only part of the context (the channel knows the peer, the
    engine's chunk loop knows chunk and algorithm) compose it via
    :meth:`attach_context`, which never overwrites a field already set.
    """

    def __init__(
        self,
        message: str = "",
        *,
        chunk: Optional[int] = None,
        algorithm: Optional[str] = None,
        peer: Optional[int] = None,
        tensor: Optional[str] = None,
    ):
        super().__init__(message)
        self.chunk = chunk
        self.algorithm = algorithm
        self.peer = peer
        self.tensor = tensor

    def attach_context(self, **context) -> "TransientCollectiveError":
        """Fill in missing location fields; returns self for chaining."""
        for key in ("chunk", "algorithm", "peer", "tensor"):
            if key in context and getattr(self, key) is None:
                setattr(self, key, context[key])
        return self

    def context(self) -> dict:
        """The non-None location fields (for reports and assertions)."""
        return {
            key: getattr(self, key)
            for key in ("chunk", "algorithm", "peer", "tensor")
            if getattr(self, key) is not None
        }

    def __str__(self):
        base = super().__str__()
        parts = [f"{k}={v}" for k, v in self.context().items()]
        return f"{base} [{', '.join(parts)}]" if parts else base


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``epoch=None`` means the fault fires at rank start (before the SPMD
    function body); ``step`` additionally narrows an epoch-level fault
    to one training batch. ``delay_s`` is the injected sleep for
    ``straggler``/``io_stall``/``msg_delay`` faults. ``permanent`` marks
    a crash as a dead-for-good rank: it re-fires on every retry until
    the rank is removed from the world.

    Message-level faults (:data:`MESSAGE_FAULT_KINDS`) are scheduled by
    ``message`` — the zero-based index of the sending rank's data
    message on the FT channel — instead of epoch/step, which pins the
    fault to an exact position inside a collective's message pattern
    regardless of the algorithm.
    """

    kind: str
    rank: int
    epoch: Optional[int] = None
    step: Optional[int] = None
    delay_s: float = 0.0
    permanent: bool = False
    message: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {ALL_FAULT_KINDS}"
            )
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank}")
        if self.step is not None and self.epoch is None:
            raise ValueError("a step-level fault needs an epoch")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")
        if self.permanent and self.kind != "crash":
            raise ValueError("only crash faults can be permanent")
        if self.kind in MESSAGE_FAULT_KINDS:
            if self.message is None:
                raise ValueError(f"a {self.kind} fault needs a message index")
            if self.message < 0:
                raise ValueError(
                    f"message index must be non-negative, got {self.message}"
                )
            if self.epoch is not None or self.step is not None:
                raise ValueError(
                    "message-level faults are scheduled by message index, "
                    "not epoch/step"
                )
        elif self.message is not None:
            raise ValueError(f"a {self.kind} fault cannot carry a message index")

    def describe(self) -> str:
        if self.kind in MESSAGE_FAULT_KINDS:
            return f"{self.kind}@rank{self.rank}/message {self.message}"
        where = (
            "rank start"
            if self.epoch is None
            else f"epoch {self.epoch}" + (f" step {self.step}" if self.step is not None else "")
        )
        extra = " (permanent)" if self.permanent else ""
        return f"{self.kind}@rank{self.rank}/{where}{extra}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seed-stamped schedule of faults.

    The seed is not consumed by the plan itself (the specs are already
    concrete); it records provenance so a run report can say exactly
    which random draw produced this schedule, and it feeds the
    reproducibility check in the tests: ``FaultPlan.random(...)`` with
    the same arguments is identical, spec for spec.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def for_rank(self, rank: int) -> list[FaultSpec]:
        return [s for s in self.specs if s.rank == rank]

    def crash_specs(self) -> list[FaultSpec]:
        return [s for s in self.specs if s.kind == "crash"]

    def describe(self) -> str:
        if not self.specs:
            return f"<FaultPlan seed={self.seed}: no faults>"
        body = ", ".join(s.describe() for s in self.specs)
        return f"<FaultPlan seed={self.seed}: {body}>"

    @classmethod
    def single_crash(
        cls, rank: int, epoch: int, permanent: bool = False, seed: int = 0
    ) -> "FaultPlan":
        """The canonical test plan: one rank dies at one epoch."""
        return cls(
            specs=(FaultSpec("crash", rank=rank, epoch=epoch, permanent=permanent),),
            seed=seed,
        )

    @classmethod
    def single_message_fault(
        cls, kind: str, rank: int, message: int, delay_s: float = 0.0, seed: int = 0
    ) -> "FaultPlan":
        """One message-level fault on the sender's Nth FT data message."""
        return cls(
            specs=(
                FaultSpec(kind, rank=rank, message=message, delay_s=delay_s),
            ),
            seed=seed,
        )

    @classmethod
    def random(
        cls,
        nranks: int,
        epochs: int,
        n_faults: int,
        seed: int = 0,
        kinds: Sequence[str] = FAULT_KINDS,
        max_delay_s: float = 0.05,
        permanent_fraction: float = 0.0,
    ) -> "FaultPlan":
        """Draw a reproducible schedule: same arguments ⇒ same plan."""
        if nranks <= 0 or epochs <= 0:
            raise ValueError("nranks and epochs must be positive")
        if n_faults < 0:
            raise ValueError(f"n_faults must be non-negative, got {n_faults}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(n_faults):
            kind = str(rng.choice(list(kinds)))
            rank = int(rng.integers(0, nranks))
            epoch = int(rng.integers(0, epochs))
            delay = float(rng.uniform(0.0, max_delay_s)) if kind in ("straggler", "io_stall") else 0.0
            permanent = bool(kind == "crash" and rng.random() < permanent_fraction)
            specs.append(
                FaultSpec(kind, rank=rank, epoch=epoch, delay_s=delay, permanent=permanent)
            )
        return cls(specs=tuple(specs), seed=seed)


@dataclass
class FiredFault:
    """One injector firing, for the reproducibility record."""

    attempt: int
    spec: FaultSpec

    def key(self) -> tuple:
        return (
            self.attempt, self.spec.kind, self.spec.rank,
            self.spec.epoch, self.spec.step, self.spec.message,
        )


class FaultInjector:
    """Runtime fault firing for one (possibly retried) job.

    Thread-safe: SPMD ranks are threads, and several can hit their
    hooks concurrently. One injector spans every retry attempt of a
    job — call :meth:`next_attempt` between attempts so transient
    faults stay consumed and permanent ones keep firing.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.attempt = 0
        self._lock = threading.Lock()
        self._fired: set[int] = set()  # indices of consumed transient specs
        self.history: list[FiredFault] = []
        self.dead_ranks: set[int] = set()

    # -- lifecycle ---------------------------------------------------------
    def next_attempt(self) -> int:
        """Advance the attempt counter (recovery calls this per retry)."""
        with self._lock:
            self.attempt += 1
            return self.attempt

    def remap_dead_ranks(self, survivors: Sequence[int]) -> None:
        """After an elastic shrink, old ranks are renumbered 0..n-1.

        ``survivors`` lists the *old* rank ids that remain, in new-rank
        order; pending faults addressed to a surviving old rank follow
        it to its new id, and faults on dead ranks are dropped.
        """
        mapping = {old: new for new, old in enumerate(survivors)}
        with self._lock:
            remapped = []
            kept_indices = []
            for i, spec in enumerate(self.plan.specs):
                if spec.rank in mapping:
                    remapped.append(replace(spec, rank=mapping[spec.rank]))
                    kept_indices.append(i)
            self._fired = {kept_indices.index(i) for i in self._fired if i in kept_indices}
            self.plan = FaultPlan(specs=tuple(remapped), seed=self.plan.seed)
            self.dead_ranks = set()

    # -- firing ------------------------------------------------------------
    def _due(self, rank: int, epoch: Optional[int], step: Optional[int]) -> list[tuple[int, FaultSpec]]:
        due = []
        for i, spec in enumerate(self.plan.specs):
            if spec.kind in MESSAGE_FAULT_KINDS:
                continue  # scheduled by message index, via on_ft_message
            if spec.rank != rank or spec.epoch != epoch or spec.step != step:
                continue
            if i in self._fired and not spec.permanent:
                continue
            due.append((i, spec))
        return due

    def _fire(self, rank: int, epoch: Optional[int], step: Optional[int]) -> None:
        with self._lock:
            due = self._due(rank, epoch, step)
            for i, spec in due:
                self._fired.add(i)
                self.history.append(FiredFault(self.attempt, spec))
                if spec.kind == "crash" and spec.permanent:
                    self.dead_ranks.add(rank)
        # sleeps and raises happen outside the lock
        for _, spec in due:
            if spec.kind in ("straggler", "io_stall"):
                if spec.delay_s > 0:
                    time.sleep(spec.delay_s)
            elif spec.kind == "collective":
                raise TransientCollectiveError(
                    f"injected collective failure: {spec.describe()}"
                )
            else:  # crash
                raise InjectedCrash(f"injected crash: {spec.describe()}")

    def on_rank_start(self, rank: int) -> None:
        """Hook for :func:`repro.mpi.run_spmd` — fires start-time faults."""
        self._fire(rank, None, None)

    def on_epoch_begin(self, rank: int, epoch: int) -> None:
        """Epoch-level stalls/stragglers fire before the epoch's batches."""
        with self._lock:
            due = [
                (i, s)
                for i, s in self._due(rank, epoch, None)
                if s.kind in ("straggler", "io_stall")
            ]
            for i, spec in due:
                self._fired.add(i)
                self.history.append(FiredFault(self.attempt, spec))
        for _, spec in due:
            if spec.delay_s > 0:
                time.sleep(spec.delay_s)

    def on_epoch_end(self, rank: int, epoch: int) -> None:
        """Epoch-level crashes/collective failures fire after the epoch."""
        with self._lock:
            due = [
                (i, s)
                for i, s in self._due(rank, epoch, None)
                if s.kind in ("crash", "collective")
            ]
            for i, spec in due:
                self._fired.add(i)
                self.history.append(FiredFault(self.attempt, spec))
                if spec.kind == "crash" and spec.permanent:
                    self.dead_ranks.add(rank)
        for _, spec in due:
            if spec.kind == "collective":
                raise TransientCollectiveError(
                    f"injected collective failure: {spec.describe()}"
                )
            raise InjectedCrash(f"injected crash: {spec.describe()}")

    def on_step(self, rank: int, epoch: int, step: int) -> None:
        """Batch-level faults fire at the start of that batch."""
        self._fire(rank, epoch, step)

    def on_ft_message(self, rank: int, message_index: int) -> list[FaultSpec]:
        """Hook for the FT channel: message faults due at this send.

        Called by :class:`repro.comms.ft.channel.FtChannel` before
        transmitting the sender's ``message_index``-th data message.
        Returns the due :data:`MESSAGE_FAULT_KINDS` specs *without
        raising* — the channel interprets them (skip the put, corrupt
        the copy, sleep, or die); the injector just records the firing
        and, for ``rank_kill``, marks the rank dead. Each message fault
        fires exactly once across all attempts.
        """
        with self._lock:
            due = [
                (i, spec)
                for i, spec in enumerate(self.plan.specs)
                if spec.kind in MESSAGE_FAULT_KINDS
                and spec.rank == rank
                and spec.message == message_index
                and i not in self._fired
            ]
            for i, spec in due:
                self._fired.add(i)
                self.history.append(FiredFault(self.attempt, spec))
                if spec.kind == "rank_kill":
                    self.dead_ranks.add(rank)
        return [spec for _, spec in due]

    # -- record ------------------------------------------------------------
    def fired_keys(self) -> list[tuple]:
        """Deterministic record of what fired (for reproducibility tests)."""
        with self._lock:
            return sorted(f.key() for f in self.history)

    def __repr__(self):
        return (
            f"<FaultInjector attempt={self.attempt} plan={len(self.plan)} faults "
            f"fired={len(self.history)} dead={sorted(self.dead_ranks)}>"
        )
