"""repro.resilience — fault injection, checkpoint/restart, elastic recovery.

The paper's §7 names checkpoint/restart for the Horovod benchmarks as
future work; this package is that work, grown into a subsystem:

- :mod:`repro.resilience.faults` — a deterministic, seedable fault
  schedule (:class:`FaultPlan`) and its runtime (:class:`FaultInjector`)
  that plugs into :func:`repro.mpi.run_spmd` (per-rank start hooks) and
  :class:`repro.hvd.FaultInjectionCallback` (epoch/step faults during
  real training). The simulator side — an MTBF failure process for
  paper-scale runs — lives in :mod:`repro.sim.faultmodel`.
- :mod:`repro.resilience.checkpoint` — :class:`CheckpointManager`:
  atomic writes, SHA-256-verified loads, last-N retention, and the
  rank-0-writes / broadcast-restore distributed protocol.
- :mod:`repro.resilience.recovery` —
  :func:`run_resilient_benchmark`: capped-exponential-backoff retries,
  resume from the newest valid checkpoint (bit-exact with a fixed
  shuffle order), and graceful degradation to a smaller world when a
  rank is permanently dead, with the learning rate and epoch partition
  re-derived from the paper's scaling rules.
"""

from repro.resilience.checkpoint import CheckpointInfo, CheckpointManager
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    TransientCollectiveError,
)
from repro.resilience.recovery import (
    AttemptRecord,
    ResilientRunResult,
    RetryPolicy,
    replan_for_world,
    run_resilient_benchmark,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "TransientCollectiveError",
    "CheckpointManager",
    "CheckpointInfo",
    "RetryPolicy",
    "AttemptRecord",
    "ResilientRunResult",
    "replan_for_world",
    "run_resilient_benchmark",
]
