"""Resilient execution: retry, resume, and elastic world shrinking.

:func:`run_resilient_benchmark` is the fault-tolerant sibling of
:func:`repro.core.parallel.run_parallel_benchmark`. It runs the same
three-phase CANDLE/Horovod job (load → train+checkpoint → evaluate),
but wraps every attempt in a supervisor loop:

1. a failed attempt (any rank crash, injected or real) is retried with
   capped exponential backoff;
2. each retry resumes from the newest *checksum-valid* checkpoint via
   :class:`~repro.resilience.CheckpointManager` — with a fixed shuffle
   order the recovered run is bit-identical to an uninterrupted one;
3. ranks declared permanently dead shrink the world: the survivors are
   renumbered, and the scaling plan is re-derived from the paper's own
   rules (linear learning-rate scaling, balanced epoch partitioning)
   for the smaller world.

The loop gives up only when the retry budget is exhausted, re-raising
the final :class:`~repro.mpi.runtime.SpmdError` with every rank's
failure attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro import hvd
from repro.candle.base import CandleBenchmark, LoadedData
from repro.core.epochs import comp_epochs_balanced
from repro.core.lr_scaling import scale_learning_rate
from repro.core.scaling import ScalingPlan
from repro.mpi import run_spmd
from repro.mpi.runtime import SpmdError
from repro.nn import get_optimizer
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import FaultInjector, FaultPlan

__all__ = [
    "RetryPolicy",
    "AttemptRecord",
    "ResilientRunResult",
    "run_resilient_benchmark",
    "replan_for_world",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for failed attempts.

    ``jitter`` spreads retries by up to that fraction of the capped
    delay — but only from an *injected* RNG: the policy never touches
    global ``random``/``np.random`` state, so SPMD ranks that each seed
    their own generator back off bit-reproducibly (the FT channel seeds
    ``options.retry_seed + rank``; :func:`run_resilient_benchmark`
    derives its generator from the run seed).
    """

    max_retries: int = 3
    base_delay_s: float = 0.05
    factor: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")

    def delay_s(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Backoff before retrying after failed attempt ``attempt``.

        With ``jitter > 0`` an RNG must be supplied — refusing to fall
        back to global random state is what makes the jitter seedable.
        """
        delay = min(self.base_delay_s * self.factor**attempt, self.max_delay_s)
        if self.jitter > 0.0:
            if rng is None:
                raise ValueError(
                    "jittered backoff needs an injected rng "
                    "(np.random.Generator) for reproducibility"
                )
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


@dataclass
class AttemptRecord:
    """One attempt of the supervised run."""

    attempt: int
    nworkers: int
    start_epoch: int
    status: str  # 'completed' | 'failed'
    failed_ranks: list[int] = field(default_factory=list)
    error: Optional[str] = None
    backoff_s: float = 0.0
    wall_s: float = 0.0


@dataclass
class ResilientRunResult:
    """What the supervised run produced, attempt by attempt."""

    benchmark: str
    initial_plan: ScalingPlan
    final_plan: ScalingPlan
    attempts: list[AttemptRecord]
    history: dict[str, list[float]]
    eval_metrics: dict[str, float]
    dead_ranks: list[int]
    checkpoint_dir: str

    @property
    def nattempts(self) -> int:
        return len(self.attempts)

    @property
    def recovered(self) -> bool:
        """True when the run failed at least once and still completed."""
        return self.nattempts > 1 and self.attempts[-1].status == "completed"

    @property
    def final_world(self) -> int:
        return self.final_plan.nworkers

    @property
    def shrunk(self) -> bool:
        return self.final_world < self.initial_plan.nworkers

    @property
    def final_loss(self) -> float:
        return self.eval_metrics["loss"]

    @property
    def total_backoff_s(self) -> float:
        return sum(a.backoff_s for a in self.attempts)


def replan_for_world(
    plan: ScalingPlan, nworkers: int, original_plan: Optional[ScalingPlan] = None
) -> ScalingPlan:
    """Re-derive a plan for a shrunken world from the paper's rules.

    Strong scaling re-partitions the *original* total epoch budget over
    the survivors (balanced, §2.3.2's ``comp_epochs``); weak scaling
    keeps epochs-per-worker. The learning rate follows the linear rule:
    the per-worker base LR (original LR / original world) times the new
    world size.
    """
    if nworkers <= 0:
        raise ValueError(f"nworkers must be positive, got {nworkers}")
    reference = original_plan if original_plan is not None else plan
    if plan.mode == "strong":
        epochs = comp_epochs_balanced(reference.total_epochs, nworkers)
    else:
        epochs = plan.epochs_per_worker
    lr = plan.learning_rate
    if lr is not None:
        base_lr = reference.learning_rate / reference.nworkers
        lr = scale_learning_rate(base_lr, nworkers)
    return replace(
        plan, nworkers=nworkers, epochs_per_worker=epochs, learning_rate=lr
    )


def _loss_and_metrics(benchmark: CandleBenchmark):
    if benchmark.spec.task == "classification":
        return "categorical_crossentropy", ["accuracy"]
    if benchmark.spec.task == "autoencoder":
        return "mse", []
    return "mse", ["mae"]


def run_resilient_benchmark(
    benchmark: CandleBenchmark,
    plan: ScalingPlan,
    checkpoint_dir,
    data: Optional[LoadedData] = None,
    seed: int = 0,
    every_n_epochs: int = 1,
    keep_last: int = 3,
    fault_plan: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    allow_shrink: bool = True,
    local_size: int = 1,
    sleep=time.sleep,
) -> ResilientRunResult:
    """Run one benchmark to completion through crashes and retries.

    ``fault_plan`` optionally injects a deterministic fault schedule
    (the rehearsal mode); real failures take exactly the same path.
    ``sleep`` is injectable so tests can assert the backoff sequence
    without waiting it out. Training always uses a fixed shuffle order,
    which is what makes checkpoint-resumed runs bit-exact.
    """
    if data is None:
        data = benchmark.synth_arrays(np.random.default_rng(seed))
    retry = retry if retry is not None else RetryPolicy()
    # backoff jitter draws from a run-seeded generator, never global state
    backoff_rng = np.random.default_rng(seed)
    loss_name, metric_names = _loss_and_metrics(benchmark)
    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    checkpoint_dir = str(checkpoint_dir)

    x_train = data.x_train
    if hasattr(benchmark, "prepare_x") and getattr(benchmark, "conv", False):
        x_train = benchmark.prepare_x(
            x_train[..., 0] if x_train.ndim == 3 else x_train
        )

    current_plan = plan
    attempts: list[AttemptRecord] = []
    all_dead: list[int] = []  # original-world ids of permanently dead ranks
    identity = list(range(plan.nworkers))  # new rank -> original rank id

    def worker(comm):
        hvd.init(comm)
        try:
            manager = CheckpointManager(
                checkpoint_dir, keep_last=keep_last
            )
            model = benchmark.build_model(seed=seed + 1000 * (comm.rank + 1))
            base_opt = get_optimizer(
                benchmark.spec.optimizer, lr=current_plan.learning_rate
            )
            model.compile(
                hvd.DistributedOptimizer(base_opt), loss_name, metrics=metric_names
            )
            callbacks = [hvd.BroadcastGlobalVariablesCallback(0)]
            meta = manager.restore_distributed(model)
            start = int(meta["epoch"]) + 1 if meta is not None else 0
            callbacks.append(
                hvd.ManagedCheckpointCallback(manager, every_n_epochs=every_n_epochs)
            )
            if injector is not None:
                callbacks.append(hvd.FaultInjectionCallback(injector))
            target = current_plan.epochs_per_worker
            epochs_to_run = max(0, target - start)
            history: dict[str, list[float]] = {}
            if epochs_to_run > 0:
                fit_history = model.fit(
                    x_train,
                    data.y_train,
                    batch_size=min(current_plan.batch_size, len(x_train)),
                    epochs=epochs_to_run,
                    initial_epoch=start,
                    shuffle=False,
                    callbacks=callbacks,
                )
                history = dict(fit_history.history)
            metrics = model.evaluate(data.x_test, data.y_test)
            return history, metrics, start
        finally:
            hvd.shutdown()

    max_attempts = retry.max_retries + 1
    for attempt in range(max_attempts):
        start_epoch_guess = 0
        t0 = time.perf_counter()
        try:
            reports = run_spmd(
                current_plan.nworkers,
                worker,
                local_size=local_size,
                fault_injector=injector,
            )
        except SpmdError as exc:
            record = AttemptRecord(
                attempt=attempt,
                nworkers=current_plan.nworkers,
                start_epoch=start_epoch_guess,
                status="failed",
                failed_ranks=exc.failed_ranks,
                error=str(exc),
                wall_s=time.perf_counter() - t0,
            )
            attempts.append(record)
            if attempt + 1 >= max_attempts:
                raise
            delay = retry.delay_s(attempt, rng=backoff_rng)
            record.backoff_s = delay
            if delay > 0:
                sleep(delay)
            if injector is not None:
                newly_dead = sorted(injector.dead_ranks)
                if newly_dead:
                    if not allow_shrink:
                        raise
                    survivors = [
                        r for r in range(current_plan.nworkers) if r not in newly_dead
                    ]
                    if not survivors:
                        raise
                    all_dead.extend(identity[r] for r in newly_dead)
                    identity = [identity[r] for r in survivors]
                    injector.remap_dead_ranks(survivors)
                    current_plan = replan_for_world(
                        current_plan, len(survivors), original_plan=plan
                    )
                injector.next_attempt()
            continue
        # success
        history, metrics, resumed_from = reports[0]
        attempts.append(
            AttemptRecord(
                attempt=attempt,
                nworkers=current_plan.nworkers,
                start_epoch=resumed_from,
                status="completed",
                wall_s=time.perf_counter() - t0,
            )
        )
        return ResilientRunResult(
            benchmark=benchmark.spec.name,
            initial_plan=plan,
            final_plan=current_plan,
            attempts=attempts,
            history=history,
            eval_metrics=metrics,
            dead_ranks=sorted(all_dead),
            checkpoint_dir=checkpoint_dir,
        )
    raise RuntimeError("unreachable: retry loop must return or raise")
