"""CheckpointManager: retained, checksummed, atomically-written checkpoints.

:mod:`repro.nn.serialization` knows how to freeze one model+optimizer
into one ``.npz``; this manager turns that into a *fault-tolerant
store*:

- every write goes to ``ckpt-<epoch>.npz`` via the atomic
  temp-then-``os.replace`` path, and its SHA-256 is recorded in a
  manifest (itself written atomically);
- the last N checkpoints are retained, older ones pruned;
- on restore, candidates are tried newest-first and *verified against
  their recorded checksum* — a corrupted or truncated file is refused
  and the previous retained checkpoint is used instead;
- :meth:`restore_distributed` implements the Horovod protocol: rank 0
  loads, then weights, optimizer slots, and metadata are broadcast so
  every rank resumes bit-identically.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass
from typing import Optional

from repro.nn.serialization import (
    CheckpointError,
    checksum_file,
    load_checkpoint,
    restore_rng_state,
    save_checkpoint,
)
from repro.telemetry import runtime as telemetry

__all__ = ["CheckpointManager", "CheckpointInfo"]

_MANIFEST = "MANIFEST.json"


@dataclass(frozen=True)
class CheckpointInfo:
    """One retained checkpoint: epoch, file, and recorded digest."""

    epoch: int
    path: str
    sha256: Optional[str] = None


class CheckpointManager:
    """A directory of verified, retained training checkpoints."""

    def __init__(self, directory, keep_last: int = 3, prefix: str = "ckpt"):
        if keep_last <= 0:
            raise ValueError(f"keep_last must be positive, got {keep_last}")
        if not re.fullmatch(r"[A-Za-z0-9_.-]+", prefix):
            raise ValueError(f"prefix must be a plain filename token, got {prefix!r}")
        self.directory = str(directory)
        self.keep_last = int(keep_last)
        self.prefix = prefix
        os.makedirs(self.directory, exist_ok=True)

    # -- naming ------------------------------------------------------------
    def path_for(self, epoch: int) -> str:
        return os.path.join(self.directory, f"{self.prefix}-{epoch:06d}.npz")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST)

    # -- manifest ----------------------------------------------------------
    def _read_manifest(self) -> dict[str, str]:
        """Filename → sha256 for every recorded checkpoint."""
        try:
            with open(self.manifest_path) as fh:
                raw = json.load(fh)
        except (OSError, ValueError):
            return {}
        return {str(k): str(v) for k, v in raw.items()}

    def _write_manifest(self, entries: dict[str, str]) -> None:
        fd, tmp = tempfile.mkstemp(
            prefix=_MANIFEST + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entries, fh, indent=1, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- listing -----------------------------------------------------------
    def checkpoints(self) -> list[CheckpointInfo]:
        """Retained checkpoints on disk, oldest → newest.

        Files present but unrecorded (e.g. the manifest write crashed)
        are still listed, with ``sha256=None`` — restore will attempt a
        guarded load of those rather than silently ignoring them.
        """
        pattern = re.compile(rf"^{re.escape(self.prefix)}-(\d+)\.npz$")
        manifest = self._read_manifest()
        found = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            match = pattern.match(name)
            if match:
                found.append(
                    CheckpointInfo(
                        epoch=int(match.group(1)),
                        path=os.path.join(self.directory, name),
                        sha256=manifest.get(name),
                    )
                )
        return sorted(found, key=lambda c: c.epoch)

    def latest_epoch(self) -> Optional[int]:
        ckpts = self.checkpoints()
        return ckpts[-1].epoch if ckpts else None

    # -- writing -----------------------------------------------------------
    def save(
        self, model, epoch: int, extra_state: Optional[dict] = None
    ) -> CheckpointInfo:
        """Checkpoint the model at ``epoch``; prune beyond ``keep_last``."""
        path = self.path_for(epoch)
        with telemetry.span(
            "checkpoint.save", category="checkpoint", epoch=epoch, path=path
        ) as sp:
            digest = save_checkpoint(model, path, epoch=epoch, extra_state=extra_state)
            manifest = self._read_manifest()
            manifest[os.path.basename(path)] = digest
            self._write_manifest(manifest)
            self._prune()
            if sp is not None:
                try:
                    sp.set_attrs(bytes=os.path.getsize(path))
                except OSError:
                    pass
        telemetry.counter("checkpoint.saves")
        return CheckpointInfo(epoch=epoch, path=path, sha256=digest)

    def _prune(self) -> None:
        ckpts = self.checkpoints()
        doomed = ckpts[: -self.keep_last] if len(ckpts) > self.keep_last else []
        if not doomed:
            return
        manifest = self._read_manifest()
        for info in doomed:
            try:
                os.unlink(info.path)
            except OSError:
                pass
            manifest.pop(os.path.basename(info.path), None)
        self._write_manifest(manifest)

    # -- verification ------------------------------------------------------
    def verify(self, info: CheckpointInfo) -> bool:
        """True when the file's bytes match its recorded checksum."""
        if info.sha256 is None:
            return False
        try:
            return checksum_file(info.path) == info.sha256
        except OSError:
            return False

    def latest_valid(self) -> Optional[CheckpointInfo]:
        """Newest checkpoint whose checksum verifies; None when nothing does."""
        for info in reversed(self.checkpoints()):
            if self.verify(info):
                return info
        return None

    def resolve(self, epoch: Optional[int] = None) -> CheckpointInfo:
        """The verified checkpoint for ``epoch`` (latest when ``None``).

        This is the version-resolution step of a serving hot-swap: a
        swap ships one *specific*, integrity-verified model version to
        every replica, so "epoch 7" must resolve to a file whose bytes
        still match the recorded digest — a missing or corrupted version
        raises :class:`~repro.nn.CheckpointError` instead of being
        silently substituted.
        """
        if epoch is None:
            info = self.latest_valid()
            if info is None:
                raise CheckpointError(
                    f"no verifiable checkpoint in {self.directory!r}"
                )
            return info
        for info in self.checkpoints():
            if info.epoch == epoch:
                if not self.verify(info):
                    raise CheckpointError(
                        f"checkpoint for epoch {epoch} fails verification: "
                        f"{info.path!r}"
                    )
                return info
        raise CheckpointError(
            f"no checkpoint for epoch {epoch} in {self.directory!r}"
        )

    # -- restoring ---------------------------------------------------------
    def restore_latest(self, model) -> Optional[dict]:
        """Restore the newest *loadable* checkpoint into the model.

        Candidates are tried newest-first. A checksum mismatch or a
        parse failure disqualifies a candidate (it is never half-loaded
        into the model) and the scan falls back to the previous
        retained checkpoint. Returns the loaded metadata, or None when
        no checkpoint survives scrutiny.
        """
        with telemetry.span("checkpoint.restore", category="checkpoint") as sp:
            for info in reversed(self.checkpoints()):
                try:
                    meta = load_checkpoint(
                        model, info.path, expected_sha256=info.sha256
                    )
                except CheckpointError:
                    telemetry.counter("checkpoint.restore.rejected")
                    continue
                _apply_rank_rng(model, meta, 0)
                if sp is not None:
                    sp.set_attrs(epoch=info.epoch, path=info.path)
                telemetry.counter("checkpoint.restores")
                return meta
            return None

    def restore_distributed(self, model, root: int = 0) -> Optional[dict]:
        """Rank-``root`` restores, then broadcasts state to every rank.

        Requires an initialized :mod:`repro.hvd` rank context. The
        broadcast covers weights, optimizer slot arrays, and the
        optimizer scalars, so a resumed multi-rank run is bit-identical
        to the uninterrupted one. Returns the checkpoint metadata on
        every rank (None everywhere when there is nothing to restore).
        """
        from repro import hvd  # deferred: keep this module import-light

        meta: Optional[dict] = None
        if hvd.rank() == root:
            meta = self.restore_latest(model)
        if hvd.size() == 1:
            return meta
        meta = hvd.broadcast(meta, root=root, name="ckpt_meta")
        if meta is None:
            return None
        hvd.broadcast_weights(model, root=root)
        opt = getattr(model.optimizer, "base", model.optimizer)
        state = opt._state if hvd.rank() == root else None
        state = hvd.broadcast(state, root=root, name="ckpt_opt_state")
        if hvd.rank() != root:
            opt._state.clear()
            for pname, slots in state.items():
                opt._state[pname] = {k: v.copy() for k, v in slots.items()}
        opt.lr = float(meta["lr"])
        opt.iterations = int(meta["iterations"])
        _apply_rank_rng(model, meta, hvd.rank())
        return meta


def _apply_rank_rng(model, meta: Optional[dict], rank: int) -> None:
    """Restore this rank's RNG snapshot from the checkpoint metadata.

    Checkpoints written by
    :class:`repro.hvd.callbacks.ManagedCheckpointCallback` carry every
    rank's RNG streams (gathered to the writer); restoring them is what
    makes a resumed run bit-identical to an uninterrupted one even with
    dropout active. Checkpoints without the snapshot (or from a larger
    world than the snapshot covers, after an elastic shrink) restore
    weights only.
    """
    extra = (meta or {}).get("extra") or {}
    states = extra.get("rank_rng")
    if states and rank < len(states):
        restore_rng_state(model, states[rank])
