"""The shared machinery of the frozen options family.

Every subsystem exposes exactly one keyword-only frozen dataclass as
its public knob — :class:`repro.train.TrainOptions`,
:class:`repro.comms.CollectiveOptions`,
:class:`repro.comms.ft.FaultToleranceOptions`,
:class:`repro.serve.ServeOptions` — plus the frozen (positional-
friendly) :class:`repro.ingest.LoaderConfig`. Before this module each
of them carried its own copy of the same three pieces:

- an ``evolve(**changes)`` helper (frozen-friendly ``dataclasses.replace``),
- construction-time validation boilerplate with hand-rolled messages,
- a deprecation shim that folds legacy per-call keywords into one
  options value (``resolve_train`` and friends).

All three now live here. The validators reproduce the family's
established message formats byte-for-byte, so rebasing an existing
options class on them is invisible to callers and tests.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Optional, Sequence

__all__ = [
    "FrozenOptions",
    "UNSET",
    "resolve_legacy",
    "require_positive",
    "require_non_negative",
    "require_in_interval",
    "require_choice",
    "require_instance",
]


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit None."""

    __slots__ = ()

    def __repr__(self):
        return "<UNSET>"


#: default for deprecated keyword parameters ("the caller said nothing")
UNSET = _Unset()


class FrozenOptions:
    """Mixin giving a frozen dataclass the family's ``evolve`` helper."""

    __slots__ = ()

    def evolve(self, **changes):
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)


# -- validation helpers -----------------------------------------------------
def require_positive(name: str, value) -> None:
    """Raise unless ``value > 0`` (the family's standard message)."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_non_negative(name: str, value) -> None:
    """Raise unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def require_in_interval(
    name: str,
    value,
    low,
    high,
    *,
    open_low: bool = False,
    open_high: bool = False,
) -> None:
    """Raise unless ``value`` lies in the interval; brackets follow
    openness, e.g. ``(0, 1]`` or ``[1, 16]`` — the exact message shape
    the options family has always used."""
    low_ok = value > low if open_low else value >= low
    high_ok = value < high if open_high else value <= high
    if not (low_ok and high_ok):
        lo = "(" if open_low else "["
        hi = ")" if open_high else "]"
        raise ValueError(
            f"{name} must be in {lo}{low}, {high}{hi}, got {value}"
        )


def require_choice(name: str, value, choices: Sequence) -> None:
    """Raise unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"unknown {name} {value!r}; known: {choices}")


def require_instance(name: str, value, cls: type) -> None:
    """Raise unless ``value`` is None or an instance of ``cls``."""
    if value is not None and not isinstance(value, cls):
        raise ValueError(
            f"{name} must be a {cls.__name__} or None, "
            f"got {type(value).__name__}"
        )


# -- deprecation shims ------------------------------------------------------
def resolve_legacy(
    cls: type,
    value,
    *,
    caller: str,
    keyword: str,
    default,
    stacklevel: int = 3,
    **legacy,
):
    """Merge deprecated per-call keywords into one options value.

    ``legacy`` maps ``cls`` *field names* to the values the caller
    received for the old keywords, with :data:`UNSET` meaning "not
    passed". Any supplied legacy value warns ``DeprecationWarning``
    (naming ``caller``), is rejected when ``keyword=`` was also given,
    and otherwise lands on the corresponding field of a fresh ``cls``.
    When nothing legacy was supplied, returns ``value`` (or ``default``
    when that is None too).

    This is the machinery behind :func:`repro.train.resolve_train` and
    any future shim in the options family — one implementation, one
    message format, one both-given error.
    """
    supplied = {k: v for k, v in legacy.items() if v is not UNSET}
    if supplied:
        names = ", ".join(f"{k}=" for k in sorted(supplied))
        warnings.warn(
            f"{caller}: {names} is deprecated; pass "
            f"{keyword}={cls.__name__}(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        if value is not None:
            raise TypeError(
                f"{caller}: pass either {keyword}= or the deprecated "
                f"{names}, not both"
            )
        return cls(**supplied)
    return value if value is not None else default
