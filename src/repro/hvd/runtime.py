"""Horovod runtime state: per-rank (thread-local) context.

Real Horovod is per-process; our ranks are threads, so the module-level
API (``hvd.size()`` etc.) resolves through ``threading.local``. A rank
thread calls ``init(comm)`` once (``comm=None`` gives a self-contained
single-rank world) and ``shutdown()`` when done; :func:`repro.core`'s
runners handle both ends.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.mpi.communicator import Communicator, _Context
from repro.hvd.timeline import Timeline

__all__ = [
    "init",
    "shutdown",
    "is_initialized",
    "size",
    "rank",
    "local_rank",
    "comm",
    "timeline",
    "tracer",
    "engine",
    "options",
    "clock",
]

_tls = threading.local()


class _HvdState:
    def __init__(
        self, communicator: Communicator, tl: Optional[Timeline], tr, opts=None
    ):
        self.comm = communicator
        self.timeline = tl if tl is not None else Timeline(origin_s=time.perf_counter())
        self.tracer = tr
        self.options = opts
        self.engine = None  # CollectiveEngine, built lazily on first use
        self.t0 = time.perf_counter()


def init(
    communicator: Optional[Communicator] = None,
    timeline: Optional[Timeline] = None,
    tracer=None,
    options=None,
) -> None:
    """Initialize Horovod for the calling rank thread.

    ``communicator=None`` creates a single-rank world, so serial code
    using the Horovod API runs unchanged — matching ``horovodrun -np 1``.
    ``tracer`` is an optional :class:`repro.telemetry.Tracer` the
    collective ops record spans into alongside the timeline; when
    omitted, the process-wide active tracer (if any) is adopted, so a
    run activated via :func:`repro.telemetry.tracing` sees its rank
    threads automatically. ``options`` is an optional
    :class:`repro.comms.CollectiveOptions` applied to every collective
    this rank issues; None uses the engine's automatic defaults.
    """
    if getattr(_tls, "state", None) is not None:
        raise RuntimeError("hvd.init() called twice on this rank; call shutdown() first")
    if communicator is None:
        communicator = Communicator(_Context(1, timeout=60.0), 0)
    if tracer is None:
        from repro.telemetry import runtime as _telemetry_rt

        tracer = _telemetry_rt.active_tracer()
    _tls.state = _HvdState(communicator, timeline, tracer, options)


def shutdown() -> None:
    """Tear down this rank's Horovod state."""
    state = getattr(_tls, "state", None)
    if state is not None and state.engine is not None:
        close = getattr(state.engine, "close", None)
        if close is not None:
            close()  # stop the FT channel's heartbeat service, if any
    _tls.state = None


def is_initialized() -> bool:
    return getattr(_tls, "state", None) is not None


def _state() -> _HvdState:
    state = getattr(_tls, "state", None)
    if state is None:
        raise RuntimeError("Horovod not initialized on this rank; call hvd.init()")
    return state


def size() -> int:
    """Number of ranks (hvd.size())."""
    return _state().comm.size


def rank() -> int:
    """This rank's global index (hvd.rank())."""
    return _state().comm.rank


def local_rank() -> int:
    """This rank's index within its node (hvd.local_rank()).

    The paper pins ``visible_device_list = str(hvd.local_rank())`` — one
    GPU per process, 0-5 on a 6-GPU Summit node.
    """
    return _state().comm.local_rank


def comm() -> Communicator:
    """The underlying communicator for this rank."""
    return _state().comm


def timeline() -> Timeline:
    """The shared timeline this rank records into."""
    return _state().timeline


def tracer():
    """This rank's bound telemetry tracer, or None when untraced."""
    return _state().tracer


def engine():
    """This rank's collective engine (built lazily on first use).

    The engine binds the rank's communicator, its run-level
    :class:`~repro.comms.CollectiveOptions` (if any), and a live view of
    the tracer, so per-chunk spans follow tracer rebinding.
    """
    state = _state()
    if state.engine is None:
        ft = getattr(state.options, "fault_tolerance", None)
        if ft is not None and ft.enabled:
            from repro.comms.ft.engine import FaultTolerantEngine

            eng = FaultTolerantEngine(
                state.comm,
                options=state.options,
                tracer=lambda: state.tracer,
            )

            def _adopt_rebuilt(record, _state_ref=state, _eng=eng):
                # runs in this rank's own thread right after an elastic
                # rebuild: the hvd-level view (size(), rank(), comm())
                # must follow the shrunken communicator
                _state_ref.comm = _eng.channel.comm

            eng.on_rebuild(_adopt_rebuilt)
            state.engine = eng
        else:
            from repro.comms import CollectiveEngine

            state.engine = CollectiveEngine(
                state.comm,
                options=state.options,
                tracer=lambda: state.tracer,
            )
    return state.engine


def options():
    """The run-level CollectiveOptions, or None for engine defaults."""
    return _state().options


def clock() -> float:
    """Seconds since this rank initialized (timeline-relative time)."""
    return time.perf_counter() - _state().t0
