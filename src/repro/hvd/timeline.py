"""Horovod timeline: Chrome-trace event recording.

"Horovod has the ability to record a timeline of its activity viewed in
the Chrome browser through chrome://tracing" (paper §4.2.1, Figs 7b, 12,
19). Event names follow the paper exactly: the broadcast family
(``negotiate_broadcast``, ``broadcast``, ``mpi_broadcast``) and the
allreduce family (``negotiate_allreduce``, ``allreduce``,
``nccl_allreduce``).

The analysis layer (:mod:`repro.analysis.timeline_analysis`) extracts
the broadcast-overhead number the paper reports (43.72 s → 4.65 s on 384
GPUs) from these events.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Timeline", "TimelineEvent", "BROADCAST_EVENTS", "ALLREDUCE_EVENTS"]

BROADCAST_EVENTS = ("negotiate_broadcast", "broadcast", "mpi_broadcast")
ALLREDUCE_EVENTS = ("negotiate_allreduce", "allreduce", "nccl_allreduce")


@dataclass(frozen=True)
class TimelineEvent:
    """One complete ('X' phase) Chrome-trace event."""

    name: str
    category: str
    rank: int
    start_s: float
    duration_s: float
    args: dict = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_chrome(self) -> dict:
        """Chrome trace-event-format dict (timestamps in microseconds)."""
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "pid": 0,
            "tid": self.rank,
            "ts": self.start_s * 1e6,
            "dur": self.duration_s * 1e6,
            "args": dict(self.args),
        }


class Timeline:
    """Append-only, thread-safe event log shared by all ranks of a run."""

    def __init__(self, origin_s: float = 0.0):
        self.origin_s = origin_s
        self._events: list[TimelineEvent] = []
        self._lock = threading.Lock()

    def record(
        self,
        name: str,
        rank: int,
        start_s: float,
        duration_s: float,
        category: Optional[str] = None,
        **args,
    ) -> TimelineEvent:
        """Record one event; times are absolute seconds in run time."""
        if duration_s < 0:
            raise ValueError(f"negative duration {duration_s} for {name!r}")
        if category is None:
            category = (
                "broadcast"
                if name in BROADCAST_EVENTS
                else "allreduce"
                if name in ALLREDUCE_EVENTS
                else "misc"
            )
        ev = TimelineEvent(
            name=name,
            category=category,
            rank=rank,
            start_s=start_s - self.origin_s,
            duration_s=duration_s,
            args=args,
        )
        with self._lock:
            self._events.append(ev)
        return ev

    @property
    def events(self) -> list[TimelineEvent]:
        with self._lock:
            return list(self._events)

    def events_named(self, *names: str) -> list[TimelineEvent]:
        """Events whose name is in ``names``, in record order."""
        return [e for e in self.events if e.name in names]

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all events."""
        evs = self.events
        if not evs:
            return (0.0, 0.0)
        return (min(e.start_s for e in evs), max(e.end_s for e in evs))

    def to_chrome_trace(self) -> dict:
        """The full chrome://tracing JSON object."""
        return {
            "traceEvents": [e.to_chrome() for e in self.events],
            "displayTimeUnit": "ms",
        }

    def dump(self, path) -> None:
        """Atomically write the Chrome trace JSON to ``path``.

        Temp-then-``os.replace``, the same pattern the ingest cache and
        checkpoint manifest use: a crash mid-dump leaves the previous
        trace intact instead of a truncated, unparseable file.
        """
        path = os.fspath(path)
        text = json.dumps(self.to_chrome_trace())
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".",
            suffix=".tmp",
            dir=os.path.dirname(path) or ".",
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def from_chrome(cls, source) -> "Timeline":
        """Rebuild a timeline from Chrome trace JSON.

        ``source`` is the trace dict, a JSON string, or a file path.
        Only complete (``ph="X"``) events are events of this model;
        counter samples and metadata are skipped. This is the read path
        that lets :mod:`repro.analysis.timeline_analysis` consume traces
        exported by :mod:`repro.telemetry` (or by this class) from disk.
        """
        if isinstance(source, (str, bytes, os.PathLike)) and os.path.exists(
            os.fspath(source)
        ):
            with open(source) as fh:
                obj = json.load(fh)
        elif isinstance(source, (str, bytes)):
            obj = json.loads(source)
        else:
            obj = source
        tl = cls()
        for ev in obj.get("traceEvents", []):
            if ev.get("ph") != "X":
                continue
            tl.record(
                ev["name"],
                int(ev.get("tid", 0)),
                float(ev["ts"]) / 1e6,
                float(ev.get("dur", 0.0)) / 1e6,
                category=ev.get("cat"),
                **dict(ev.get("args") or {}),
            )
        return tl

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
