"""Keras-side Horovod callbacks.

``BroadcastGlobalVariablesCallback(0)`` is the paper's
``hvd.BroadcastGlobalVariablesHook(0)``: added to the model's callback
list, it broadcasts rank 0's weights to every rank at the start of
training, "ensuring consistent initialization of all workers when
training is started with random weights."

``CheckpointCallback`` implements the paper's stated future work
("checkpoint/restart features … for fault tolerance"): rank 0 writes a
full model+optimizer checkpoint every N epochs, and
:func:`resume_from_checkpoint` restores it and re-broadcasts so every
rank resumes consistently.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.hvd import ops as _ops
from repro.hvd import runtime as _rt
from repro.nn.callbacks import Callback
from repro.nn.serialization import (
    capture_rng_state,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "BroadcastGlobalVariablesCallback",
    "MetricAverageCallback",
    "CheckpointCallback",
    "ManagedCheckpointCallback",
    "FaultInjectionCallback",
    "resume_from_checkpoint",
]


class BroadcastGlobalVariablesCallback(Callback):
    """Broadcast initial weights from ``root`` on train begin."""

    def __init__(self, root: int = 0):
        super().__init__()
        if root < 0:
            raise ValueError(f"root rank must be non-negative, got {root}")
        self.root = root
        self.broadcast_done = False

    def on_train_begin(self, logs=None):
        if _rt.size() > 1:
            _ops.broadcast_weights(self.model, root=self.root)
        self.broadcast_done = True


class MetricAverageCallback(Callback):
    """Average epoch metrics across ranks (hvd.callbacks analog).

    Rewrites each epoch's logs in place with the allreduce mean, so
    every rank reports the same global metric — used when ranks train
    on different shards and a single curve is wanted. ``options``
    overrides the run-level :class:`~repro.comms.CollectiveOptions` for
    the metric reduction (metrics are tiny — never compress them along
    with the gradients).
    """

    def __init__(self, options=None):
        super().__init__()
        self.options = options

    def on_epoch_end(self, epoch, logs=None):
        if logs is None or _rt.size() == 1:
            return
        keys = sorted(k for k, v in logs.items() if isinstance(v, (int, float)))
        import numpy as np

        vec = np.array([float(logs[k]) for k in keys])
        avg = _ops.allreduce(
            vec, op="mean", name="epoch_metrics", options=self.options
        )
        for key, value in zip(keys, avg):
            logs[key] = float(value)


class CheckpointCallback(Callback):
    """Rank 0 writes a model+optimizer checkpoint every N epochs.

    Only rank 0 writes (the standard Horovod pattern — all ranks hold
    identical weights after each allreduced step, so one copy suffices).
    """

    def __init__(self, path: str, every_n_epochs: int = 1, root: int = 0):
        super().__init__()
        if every_n_epochs <= 0:
            raise ValueError(
                f"every_n_epochs must be positive, got {every_n_epochs}"
            )
        self.path = str(path)
        self.every_n_epochs = int(every_n_epochs)
        self.root = root
        self.epochs_written: list[int] = []

    def on_epoch_end(self, epoch, logs=None):
        if (epoch + 1) % self.every_n_epochs != 0:
            return
        if _rt.rank() == self.root:
            save_checkpoint(self.model, self.path, epoch=epoch)
        self.epochs_written.append(epoch)
        if _rt.size() > 1:
            # barrier so no rank races ahead of a half-written checkpoint
            _rt.comm().barrier()


class ManagedCheckpointCallback(Callback):
    """Rank 0 checkpoints through a :class:`~repro.resilience.CheckpointManager`.

    The manager adds what the plain :class:`CheckpointCallback` lacks
    for fault tolerance: atomic writes, a checksummed manifest, and
    retention of the last N checkpoints — so an injected crash mid-write
    or a corrupted file can never poison the restart path. As with the
    plain callback, only the root writes and every rank barriers on the
    epoch boundary so no rank races ahead of a half-finished write.

    Every rank's RNG streams (shuffle order, dropout masks) are
    gathered to the root and stored in the checkpoint, so a resume
    restores not just the weights but the *stochastic position* of each
    rank — the piece that makes resumed training bit-identical to an
    uninterrupted run.
    """

    def __init__(self, manager, every_n_epochs: int = 1, root: int = 0):
        super().__init__()
        if every_n_epochs <= 0:
            raise ValueError(
                f"every_n_epochs must be positive, got {every_n_epochs}"
            )
        self.manager = manager
        self.every_n_epochs = int(every_n_epochs)
        self.root = root
        self.epochs_written: list[int] = []

    def on_epoch_end(self, epoch, logs=None):
        if (epoch + 1) % self.every_n_epochs != 0:
            return
        rng_state = capture_rng_state(self.model)
        if _rt.size() > 1:
            states = _rt.comm().gather(rng_state, root=self.root)
        else:
            states = [rng_state]
        if _rt.rank() == self.root:
            self.manager.save(
                self.model, epoch, extra_state={"rank_rng": states}
            )
        self.epochs_written.append(epoch)
        if _rt.size() > 1:
            _rt.comm().barrier()


class FaultInjectionCallback(Callback):
    """Fire a :class:`repro.resilience.FaultInjector`'s training-time faults.

    Bridges the Keras-style callback lifecycle to the injector's hook
    points: epoch begin (stragglers, I/O stalls), batch begin
    (step-level faults), epoch end (crashes, collective failures). The
    injector is duck-typed — anything exposing ``on_epoch_begin(rank,
    epoch)``, ``on_step(rank, epoch, step)`` and ``on_epoch_end(rank,
    epoch)`` works — which keeps this module free of a resilience
    import cycle.
    """

    def __init__(self, injector):
        super().__init__()
        self.injector = injector
        self._epoch: Optional[int] = None

    def on_epoch_begin(self, epoch, logs=None):
        self._epoch = epoch
        self.injector.on_epoch_begin(_rt.rank(), epoch)

    def on_batch_begin(self, batch, logs=None):
        if self._epoch is not None:
            self.injector.on_step(_rt.rank(), self._epoch, batch)

    def on_epoch_end(self, epoch, logs=None):
        self.injector.on_epoch_end(_rt.rank(), epoch)


def resume_from_checkpoint(model, path, root: int = 0) -> Optional[dict]:
    """Restore a checkpoint on ``root`` and broadcast to every rank.

    Returns the checkpoint metadata (with the epoch to resume from), or
    None when the file does not exist (fresh start — callers can treat
    a missing checkpoint as epoch 0).
    """
    exists = os.path.exists(path) if _rt.rank() == root else None
    if _rt.size() > 1:
        exists = _ops.broadcast(exists, root=root, name="checkpoint_exists")
    if not exists:
        return None
    meta: Optional[dict] = None
    if _rt.rank() == root:
        meta = load_checkpoint(model, path)
    if _rt.size() > 1:
        meta = _ops.broadcast(meta, root=root, name="checkpoint_meta")
        _ops.broadcast_weights(model, root=root)
        # replicate optimizer scalar state so LR schedules line up
        opt = getattr(model.optimizer, "base", model.optimizer)
        opt.lr = float(meta["lr"])
        opt.iterations = int(meta["iterations"])
    return meta
