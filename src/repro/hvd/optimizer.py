"""DistributedOptimizer: the Horovod gradient-averaging wrapper.

Paper §2.3.2: "Wrap the original optimizer in the Horovod distributed
optimizer using hvd.DistributedOptimizer(optimizer). The distributed
optimizer delegates the gradient computation to the original optimizer,
averages gradients using the Allreduce, and then applies those averaged
gradients."

Gradients are fused per :class:`repro.hvd.fusion.FusionBuffer` before
the allreduce, so each training step issues one (or a few) large
reductions rather than one per layer. The whole step is configured by
one :class:`repro.train.TrainOptions` passed as ``train=``: its
``collective``/``fault_tolerance`` govern how reductions travel, and
``overlap=True`` lets an attached
:class:`repro.overlap.OverlapScheduler` take over the arena reduction —
``apply_arena`` then drains the scheduler's fence instead of issuing
the serialized slab allreduces. The earlier ``options=`` (a bare
:class:`~repro.comms.CollectiveOptions`) and the pre-engine
``fusion_bytes=`` keywords still work behind
:class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

import numpy as np

from repro.comms import CollectiveOptions
from repro.hvd import ops as _ops
from repro.hvd import runtime as _rt
from repro.hvd.fusion import FusionBuffer
from repro.nn.optimizers import Optimizer
from repro.train import TrainOptions

__all__ = ["DistributedOptimizer"]


class DistributedOptimizer(Optimizer):
    """Wraps a base optimizer; averages gradients over ranks first."""

    def __init__(
        self,
        base: Optimizer,
        *legacy,
        train: Optional[TrainOptions] = None,
        options: Optional[CollectiveOptions] = None,
        fusion_bytes: Optional[int] = None,
    ):
        if not isinstance(base, Optimizer):
            raise TypeError(f"expected an Optimizer, got {type(base)!r}")
        if legacy:
            if len(legacy) > 1:
                raise TypeError(
                    f"DistributedOptimizer takes at most one positional "
                    f"option (fusion_bytes), got {len(legacy)}"
                )
            fusion_bytes = legacy[0]
        if fusion_bytes is not None:
            warnings.warn(
                "DistributedOptimizer(fusion_bytes=...) is deprecated; pass "
                "train=TrainOptions(collective=CollectiveOptions("
                "fusion_bytes=...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if options is not None or train is not None:
                raise TypeError(
                    "pass either train= or the deprecated fusion_bytes=, "
                    "not both"
                )
            options = CollectiveOptions(fusion_bytes=int(fusion_bytes))
        if options is not None:
            if fusion_bytes is None:  # the fusion_bytes shim already warned
                warnings.warn(
                    "DistributedOptimizer(options=...) is deprecated; pass "
                    "train=TrainOptions(collective=...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            if train is not None:
                raise TypeError(
                    "pass either train= or the deprecated options=, not both"
                )
            train = TrainOptions(collective=options)
        # Deliberately no super().__init__: lr/decay/state all proxy to base.
        self.base = base
        self.train = train if train is not None else TrainOptions()
        #: effective CollectiveOptions of this run's reductions
        #: (None = run-level options / engine defaults), kept under the
        #: pre-TrainOptions attribute name for compatibility
        self.options = self.train.effective_collective
        self.fusion = FusionBuffer.from_options(self.options)
        self.allreduce_count = 0
        #: (old_world, new_world) pairs for every elastic world change
        self.world_rescales: list = []
        self._world: Optional[int] = None
        #: the attached overlap scheduler, when the step is overlapped
        self._overlap = None

    # -- learning-rate proxying (LR scaling must reach the base) -----------
    @property
    def lr(self) -> float:
        return self.base.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.base.lr = value

    @property
    def iterations(self) -> int:
        return self.base.iterations

    def scale_lr(self, factor: float) -> None:
        self.base.scale_lr(factor)

    # -- overlap attachment -------------------------------------------------
    def attach_overlap(self, scheduler) -> None:
        """Let an :class:`repro.overlap.OverlapScheduler` own the arena
        reduction; ``apply_arena`` drains its fence instead of issuing
        the serialized slab allreduces."""
        self._overlap = scheduler

    def detach_overlap(self, scheduler=None) -> None:
        """Return to the serialized reduction path."""
        if scheduler is None or self._overlap is scheduler:
            self._overlap = None

    # -- the Horovod step ---------------------------------------------------
    def apply_gradients(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        """Allreduce-average ``grads`` across ranks, then delegate."""
        averaged = self.reduce_gradients(grads)
        self.base.apply_gradients(params, averaged)

    def reduce_gradients(self, grads: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Fused ring-allreduce mean of every gradient tensor."""
        if _rt.size() == 1:
            return grads
        averaged: Dict[str, np.ndarray] = {}
        for group in self.fusion.plan(grads):
            fused = self.fusion.pack(grads, group)
            reduced = _ops.allreduce(
                fused, op="mean", name="+".join(group), options=self.options
            )
            self.allreduce_count += 1
            averaged.update(FusionBuffer.unpack(reduced, grads, group))
        self._reconcile_world()
        return averaged

    def _reconcile_world(self) -> None:
        """Re-apply the linear LR rule when the world size changes.

        A fault-tolerant run that loses a rank keeps training on the
        survivors (elastic rebuild); the effective global batch shrinks
        with the world, so the learning rate follows it — the same
        linear scaling the benchmark applied at startup, applied to the
        ratio of the new world to the old.
        """
        world = _rt.size()
        if self._world is None:
            self._world = world
        elif world != self._world:
            self.scale_lr(world / self._world)
            self.world_rescales.append((self._world, world))
            self._world = world

    def apply_arena(self, arena) -> None:
        """Zero-copy Horovod step for arena-built models.

        Gradients already live in one contiguous slab laid out in fusion
        order, so there is nothing to pack: each fusion group is a slab
        *slice*, allreduced directly, with the mean copied back in place
        before the base optimizer's fused update. With an attached
        overlap scheduler that armed this step, the buckets are already
        in flight — the drain fence replaces the serialized reductions
        (bit-identical on the non-compressed path: same buffers, same
        schedules, same canonical reduction order).
        """
        if self._overlap is not None and self._overlap.finish_step(arena):
            self._reconcile_world()
        else:
            self.reduce_arena(arena)
        self.base.apply_arena(arena)

    def reduce_arena(self, arena) -> None:
        """Allreduce-average the gradient slab, slice by fusion group."""
        if _rt.size() == 1:
            return
        for start, stop, names in arena.fusion_groups(self.fusion.capacity_bytes):
            view = arena.grads_flat[start:stop]
            reduced = _ops.allreduce(
                view, op="mean", name="+".join(names), options=self.options
            )
            self.allreduce_count += 1
            np.copyto(view, reduced)
        self._reconcile_world()

    def __repr__(self):
        return f"DistributedOptimizer({self.base!r})"
