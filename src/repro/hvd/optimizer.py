"""DistributedOptimizer: the Horovod gradient-averaging wrapper.

Paper §2.3.2: "Wrap the original optimizer in the Horovod distributed
optimizer using hvd.DistributedOptimizer(optimizer). The distributed
optimizer delegates the gradient computation to the original optimizer,
averages gradients using the Allreduce, and then applies those averaged
gradients."

Gradients are fused per :class:`repro.hvd.fusion.FusionBuffer` before
the allreduce, so each training step issues one (or a few) large
reductions rather than one per layer. How those reductions travel —
algorithm, compression, chunking, and the fusion capacity itself — is
configured by one :class:`repro.comms.CollectiveOptions` passed as
``options=`` and threaded down to the collective engine unchanged. The
pre-engine ``fusion_bytes=`` keyword still works behind a
:class:`DeprecationWarning` shim.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

import numpy as np

from repro.comms import CollectiveOptions
from repro.hvd import ops as _ops
from repro.hvd import runtime as _rt
from repro.hvd.fusion import FusionBuffer
from repro.nn.optimizers import Optimizer

__all__ = ["DistributedOptimizer"]


class DistributedOptimizer(Optimizer):
    """Wraps a base optimizer; averages gradients over ranks first."""

    def __init__(
        self,
        base: Optimizer,
        *legacy,
        options: Optional[CollectiveOptions] = None,
        fusion_bytes: Optional[int] = None,
    ):
        if not isinstance(base, Optimizer):
            raise TypeError(f"expected an Optimizer, got {type(base)!r}")
        if legacy:
            if len(legacy) > 1:
                raise TypeError(
                    f"DistributedOptimizer takes at most one positional "
                    f"option (fusion_bytes), got {len(legacy)}"
                )
            fusion_bytes = legacy[0]
        if fusion_bytes is not None:
            warnings.warn(
                "DistributedOptimizer(fusion_bytes=...) is deprecated; pass "
                "options=CollectiveOptions(fusion_bytes=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if options is not None:
                raise TypeError(
                    "pass either options= or the deprecated fusion_bytes=, not both"
                )
            options = CollectiveOptions(fusion_bytes=int(fusion_bytes))
        # Deliberately no super().__init__: lr/decay/state all proxy to base.
        self.base = base
        self.options = options  # None = run-level options / engine defaults
        self.fusion = FusionBuffer.from_options(options)
        self.allreduce_count = 0
        #: (old_world, new_world) pairs for every elastic world change
        self.world_rescales: list = []
        self._world: Optional[int] = None

    # -- learning-rate proxying (LR scaling must reach the base) -----------
    @property
    def lr(self) -> float:
        return self.base.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.base.lr = value

    @property
    def iterations(self) -> int:
        return self.base.iterations

    def scale_lr(self, factor: float) -> None:
        self.base.scale_lr(factor)

    # -- the Horovod step ---------------------------------------------------
    def apply_gradients(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        """Allreduce-average ``grads`` across ranks, then delegate."""
        averaged = self.reduce_gradients(grads)
        self.base.apply_gradients(params, averaged)

    def reduce_gradients(self, grads: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Fused ring-allreduce mean of every gradient tensor."""
        if _rt.size() == 1:
            return grads
        averaged: Dict[str, np.ndarray] = {}
        for group in self.fusion.plan(grads):
            fused = self.fusion.pack(grads, group)
            reduced = _ops.allreduce(
                fused, op="mean", name="+".join(group), options=self.options
            )
            self.allreduce_count += 1
            averaged.update(FusionBuffer.unpack(reduced, grads, group))
        self._reconcile_world()
        return averaged

    def _reconcile_world(self) -> None:
        """Re-apply the linear LR rule when the world size changes.

        A fault-tolerant run that loses a rank keeps training on the
        survivors (elastic rebuild); the effective global batch shrinks
        with the world, so the learning rate follows it — the same
        linear scaling the benchmark applied at startup, applied to the
        ratio of the new world to the old.
        """
        world = _rt.size()
        if self._world is None:
            self._world = world
        elif world != self._world:
            self.scale_lr(world / self._world)
            self.world_rescales.append((self._world, world))
            self._world = world

    def apply_arena(self, arena) -> None:
        """Zero-copy Horovod step for arena-built models.

        Gradients already live in one contiguous slab laid out in fusion
        order, so there is nothing to pack: each fusion group is a slab
        *slice*, allreduced directly, with the mean copied back in place
        before the base optimizer's fused update.
        """
        self.reduce_arena(arena)
        self.base.apply_arena(arena)

    def reduce_arena(self, arena) -> None:
        """Allreduce-average the gradient slab, slice by fusion group."""
        if _rt.size() == 1:
            return
        for start, stop, names in arena.fusion_groups(self.fusion.capacity_bytes):
            view = arena.grads_flat[start:stop]
            reduced = _ops.allreduce(
                view, op="mean", name="+".join(names), options=self.options
            )
            self.allreduce_count += 1
            np.copyto(view, reduced)
        self._reconcile_world()

    def __repr__(self):
        return f"DistributedOptimizer({self.base!r})"
