"""DistributedOptimizer: the Horovod gradient-averaging wrapper.

Paper §2.3.2: "Wrap the original optimizer in the Horovod distributed
optimizer using hvd.DistributedOptimizer(optimizer). The distributed
optimizer delegates the gradient computation to the original optimizer,
averages gradients using the Allreduce, and then applies those averaged
gradients."

Gradients are fused per :class:`repro.hvd.fusion.FusionBuffer` before
the ring allreduce, so each training step issues one (or a few) large
reductions rather than one per layer.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.hvd import ops as _ops
from repro.hvd import runtime as _rt
from repro.hvd.fusion import DEFAULT_FUSION_BYTES, FusionBuffer
from repro.nn.optimizers import Optimizer

__all__ = ["DistributedOptimizer"]


class DistributedOptimizer(Optimizer):
    """Wraps a base optimizer; averages gradients over ranks first."""

    def __init__(self, base: Optimizer, fusion_bytes: int = DEFAULT_FUSION_BYTES):
        if not isinstance(base, Optimizer):
            raise TypeError(f"expected an Optimizer, got {type(base)!r}")
        # Deliberately no super().__init__: lr/decay/state all proxy to base.
        self.base = base
        self.fusion = FusionBuffer(fusion_bytes)
        self.allreduce_count = 0

    # -- learning-rate proxying (LR scaling must reach the base) -----------
    @property
    def lr(self) -> float:
        return self.base.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.base.lr = value

    @property
    def iterations(self) -> int:
        return self.base.iterations

    def scale_lr(self, factor: float) -> None:
        self.base.scale_lr(factor)

    # -- the Horovod step ---------------------------------------------------
    def apply_gradients(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        """Allreduce-average ``grads`` across ranks, then delegate."""
        averaged = self.reduce_gradients(grads)
        self.base.apply_gradients(params, averaged)

    def reduce_gradients(self, grads: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Fused ring-allreduce mean of every gradient tensor."""
        if _rt.size() == 1:
            return grads
        averaged: Dict[str, np.ndarray] = {}
        for group in self.fusion.plan(grads):
            fused = self.fusion.pack(grads, group)
            reduced = _ops.allreduce(fused, op="mean", name="+".join(group))
            self.allreduce_count += 1
            averaged.update(FusionBuffer.unpack(reduced, grads, group))
        return averaged

    def apply_arena(self, arena) -> None:
        """Zero-copy Horovod step for arena-built models.

        Gradients already live in one contiguous slab laid out in fusion
        order, so there is nothing to pack: each fusion group is a slab
        *slice*, allreduced directly, with the mean copied back in place
        before the base optimizer's fused update.
        """
        self.reduce_arena(arena)
        self.base.apply_arena(arena)

    def reduce_arena(self, arena) -> None:
        """Allreduce-average the gradient slab, slice by fusion group."""
        if _rt.size() == 1:
            return
        for start, stop, names in arena.fusion_groups(self.fusion.capacity_bytes):
            view = arena.grads_flat[start:stop]
            reduced = _ops.allreduce(view, op="mean", name="+".join(names))
            self.allreduce_count += 1
            np.copyto(view, reduced)

    def __repr__(self):
        return f"DistributedOptimizer({self.base!r})"
