"""Instrumented collective operations (the hvd.* tensor ops).

Every op records the paper's timeline event structure:

- a *negotiate* phase — Horovod's coordinator rendezvous, which in
  functional mode is real waiting: the time from this rank entering the
  op until every rank has entered. This is exactly the mechanism behind
  the paper's 43.72 s broadcast overhead: ranks that finish data loading
  early sit in ``negotiate_broadcast`` until the slowest loader arrives.
- the data-movement phase (``mpi_broadcast`` inside ``broadcast``, or
  ``nccl_allreduce`` inside ``allreduce``), which is the tree/ring
  algorithm actually moving buffers.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Sequence

import numpy as np

from repro.hvd import runtime as _rt

__all__ = ["allreduce", "broadcast", "allgather", "broadcast_weights"]


def _nbytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(_nbytes(o) for o in obj)
    return 64


def _trace(name: str, category: str, rank: int, start_s: float, duration_s: float, **attrs) -> None:
    """Mirror a collective's timing into this rank's telemetry tracer.

    Spans carry the byte counts the timeline events already record, so
    per-collective bandwidth and energy attribution need no second
    instrumentation pass. No-op on untraced runs.
    """
    tr = _rt.tracer()
    if tr is not None:
        tr.record_span(
            name, start_s, duration_s, category=category, rank=rank,
            absolute=True, **attrs,
        )


def allreduce(tensor: np.ndarray, op: str = "mean", name: Optional[str] = None) -> np.ndarray:
    """Average (or sum/max/min) a tensor across all ranks.

    Records ``negotiate_allreduce`` (rendezvous wait), ``allreduce``
    (the whole op), and ``nccl_allreduce`` (the ring data movement).
    """
    comm = _rt.comm()
    tl = _rt.timeline()
    tag = name or "tensor"
    t_enter = time.perf_counter()
    comm.barrier()  # rendezvous: every rank ready to reduce
    t_ready = time.perf_counter()
    result = comm.allreduce(tensor, op=op)
    t_done = time.perf_counter()
    nbytes = _nbytes(tensor)
    tl.record("negotiate_allreduce", comm.rank, t_enter, t_ready - t_enter, tensor=tag)
    tl.record(
        "allreduce", comm.rank, t_ready, t_done - t_ready, tensor=tag, bytes=nbytes
    )
    tl.record("nccl_allreduce", comm.rank, t_ready, t_done - t_ready, tensor=tag)
    _trace(
        "negotiate_allreduce", "allreduce", comm.rank, t_enter, t_ready - t_enter,
        tensor=tag,
    )
    _trace(
        "allreduce", "allreduce", comm.rank, t_ready, t_done - t_ready,
        tensor=tag, bytes=nbytes,
    )
    return result


def broadcast(obj: Any, root: int = 0, name: Optional[str] = None) -> Any:
    """Broadcast any object from ``root``; returns it on every rank.

    Records ``negotiate_broadcast`` (rendezvous wait — dominated by
    data-loading skew in the unoptimized benchmarks), ``broadcast``, and
    ``mpi_broadcast`` (the binomial-tree movement).
    """
    comm = _rt.comm()
    tl = _rt.timeline()
    tag = name or "object"
    t_enter = time.perf_counter()
    comm.barrier()  # rendezvous: slowest rank gates everyone
    t_ready = time.perf_counter()
    result = comm.bcast(obj, root=root)
    t_done = time.perf_counter()
    nbytes = _nbytes(obj)
    tl.record("negotiate_broadcast", comm.rank, t_enter, t_ready - t_enter, tensor=tag)
    tl.record(
        "broadcast", comm.rank, t_ready, t_done - t_ready, tensor=tag, bytes=nbytes
    )
    tl.record("mpi_broadcast", comm.rank, t_ready, t_done - t_ready, tensor=tag)
    _trace(
        "negotiate_broadcast", "broadcast", comm.rank, t_enter, t_ready - t_enter,
        tensor=tag,
    )
    _trace(
        "broadcast", "broadcast", comm.rank, t_ready, t_done - t_ready,
        tensor=tag, bytes=nbytes,
    )
    return result


def allgather(obj: Any, name: Optional[str] = None) -> list:
    """Gather one object per rank, everywhere (rank-ordered)."""
    comm = _rt.comm()
    tl = _rt.timeline()
    t_enter = time.perf_counter()
    result = comm.allgather(obj)
    duration = time.perf_counter() - t_enter
    tl.record(
        "allgather",
        comm.rank,
        t_enter,
        duration,
        category="allgather",
        tensor=name or "object",
    )
    _trace(
        "allgather", "allgather", comm.rank, t_enter, duration,
        tensor=name or "object", bytes=_nbytes(obj),
    )
    return result


def broadcast_weights(target, root: int = 0) -> None:
    """Broadcast model weights from ``root`` and install them in place.

    ``target`` is a :class:`repro.nn.Sequential` or a name→array dict.
    In-place installation preserves optimizer-state identity — the same
    property Horovod's broadcast hook relies on.
    """
    if hasattr(target, "named_parameters"):
        params = target.named_parameters()
    elif isinstance(target, dict):
        params = target
    else:
        raise TypeError(
            f"expected a model with named_parameters() or a dict, got {type(target)!r}"
        )
    names = sorted(params)
    payload = [params[n] for n in names] if _rt.rank() == root else None
    received = broadcast(payload, root=root, name="global_variables")
    for name, arr in zip(names, received):
        np.copyto(params[name], arr)
