"""Instrumented collective operations (the hvd.* tensor ops).

Every op records the paper's timeline event structure:

- a *negotiate* phase — Horovod's coordinator rendezvous, which in
  functional mode is real waiting: the time from this rank entering the
  op until every rank has entered. This is exactly the mechanism behind
  the paper's 43.72 s broadcast overhead: ranks that finish data loading
  early sit in ``negotiate_broadcast`` until the slowest loader arrives.
- the data-movement phase (``mpi_broadcast`` inside ``broadcast``, or
  ``nccl_allreduce`` inside ``allreduce``), which is the tree/ring
  algorithm actually moving buffers.

Array allreduces route through the rank's
:class:`~repro.comms.CollectiveEngine`, which resolves the transport
algorithm (ring / recursive halving-doubling / hierarchical / flat) from
the run's :class:`~repro.comms.CollectiveOptions` and the machine
topology. Non-compressed schedules are bit-identical to the flat
reference path, so this routing is numerically invisible.

All signatures are keyword-only past the payload (``op=``, ``root=``,
``name=``, ``options=``); the historical positional forms still work but
raise :class:`DeprecationWarning`.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Optional

import numpy as np

from repro.hvd import runtime as _rt
from repro.mpi.communicator import payload_nbytes as _nbytes

__all__ = ["allreduce", "broadcast", "allgather", "broadcast_weights"]


def _legacy_positional(fn_name: str, legacy: tuple, params: tuple, values: dict):
    """Apply deprecated positional arguments onto keyword-only params."""
    if not legacy:
        return values
    if len(legacy) > len(params):
        raise TypeError(
            f"{fn_name}() takes at most {len(params)} positional option "
            f"argument(s) ({', '.join(params)}), got {len(legacy)}"
        )
    shown = ", ".join(params[: len(legacy)])
    warnings.warn(
        f"passing {shown} positionally to {fn_name}() is deprecated; "
        f"use keyword arguments ({fn_name}(..., {params[0]}=...))",
        DeprecationWarning,
        stacklevel=3,
    )
    out = dict(values)
    for param, value in zip(params, legacy):
        out[param] = value
    return out


def _trace(name: str, category: str, rank: int, start_s: float, duration_s: float, **attrs) -> None:
    """Mirror a collective's timing into this rank's telemetry tracer.

    Spans carry the byte counts the timeline events already record, so
    per-collective bandwidth and energy attribution need no second
    instrumentation pass. No-op on untraced runs.
    """
    tr = _rt.tracer()
    if tr is not None:
        tr.record_span(
            name, start_s, duration_s, category=category, rank=rank,
            absolute=True, **attrs,
        )


def allreduce(
    tensor: np.ndarray,
    *legacy,
    op: str = "mean",
    name: Optional[str] = None,
    options=None,
) -> np.ndarray:
    """Average (or sum/max/min) a tensor across all ranks.

    Records ``negotiate_allreduce`` (rendezvous wait), ``allreduce``
    (the whole op), and ``nccl_allreduce`` (the data movement, tagged
    with the resolved algorithm). ``options`` overrides the run-level
    :class:`~repro.comms.CollectiveOptions` for this one call.
    """
    resolved = _legacy_positional(
        "allreduce", legacy, ("op", "name"), {"op": op, "name": name}
    )
    op, name = resolved["op"], resolved["name"]
    comm = _rt.comm()
    tl = _rt.timeline()
    tag = name or "tensor"
    run_opts = options if options is not None else _rt.options()
    ft = getattr(run_opts, "fault_tolerance", None)
    ft_enabled = ft is not None and ft.enabled and comm.size > 1
    t_enter = time.perf_counter()
    if not ft_enabled:
        # rendezvous: every rank ready to reduce. Under fault tolerance
        # the engine's completion fence provides the synchronization, and
        # a raw barrier would hang forever on a rank that died.
        comm.barrier()
    t_ready = time.perf_counter()
    if isinstance(tensor, np.ndarray) and tensor.size >= comm.size:
        eng = _rt.engine()
        result = eng.allreduce(tensor, op=op, name=tag, options=options)
        algorithm = eng.last_info.get("algorithm", "flat")
        comm = _rt.comm()  # an elastic rebuild may have swapped it
    else:
        # scalars and sub-world arrays take the communicator's tree path
        result = comm.allreduce(tensor, op=op)
        algorithm = "flat"
    t_done = time.perf_counter()
    nbytes = _nbytes(tensor)
    tl.record("negotiate_allreduce", comm.rank, t_enter, t_ready - t_enter, tensor=tag)
    tl.record(
        "allreduce", comm.rank, t_ready, t_done - t_ready, tensor=tag,
        bytes=nbytes, algorithm=algorithm,
    )
    tl.record("nccl_allreduce", comm.rank, t_ready, t_done - t_ready, tensor=tag)
    _trace(
        "negotiate_allreduce", "allreduce", comm.rank, t_enter, t_ready - t_enter,
        tensor=tag,
    )
    _trace(
        "allreduce", "allreduce", comm.rank, t_ready, t_done - t_ready,
        tensor=tag, bytes=nbytes, algorithm=algorithm,
    )
    return result


def broadcast(
    obj: Any,
    *legacy,
    root: int = 0,
    name: Optional[str] = None,
    options=None,
) -> Any:
    """Broadcast any object from ``root``; returns it on every rank.

    Records ``negotiate_broadcast`` (rendezvous wait — dominated by
    data-loading skew in the unoptimized benchmarks), ``broadcast``, and
    ``mpi_broadcast`` (the binomial-tree movement). ``options`` is
    accepted for signature uniformity; the functional tree broadcast has
    no algorithm variants (the simulator prices hierarchical vs flat via
    :func:`repro.comms.plan_broadcast`).
    """
    resolved = _legacy_positional(
        "broadcast", legacy, ("root", "name"), {"root": root, "name": name}
    )
    root, name = resolved["root"], resolved["name"]
    del options  # no functional variants; see docstring
    comm = _rt.comm()
    tl = _rt.timeline()
    tag = name or "object"
    t_enter = time.perf_counter()
    comm.barrier()  # rendezvous: slowest rank gates everyone
    t_ready = time.perf_counter()
    result = comm.bcast(obj, root=root)
    t_done = time.perf_counter()
    nbytes = _nbytes(obj)
    tl.record("negotiate_broadcast", comm.rank, t_enter, t_ready - t_enter, tensor=tag)
    tl.record(
        "broadcast", comm.rank, t_ready, t_done - t_ready, tensor=tag, bytes=nbytes
    )
    tl.record("mpi_broadcast", comm.rank, t_ready, t_done - t_ready, tensor=tag)
    _trace(
        "negotiate_broadcast", "broadcast", comm.rank, t_enter, t_ready - t_enter,
        tensor=tag,
    )
    _trace(
        "broadcast", "broadcast", comm.rank, t_ready, t_done - t_ready,
        tensor=tag, bytes=nbytes,
    )
    return result


def allgather(obj: Any, *legacy, name: Optional[str] = None, options=None) -> list:
    """Gather one object per rank, everywhere (rank-ordered)."""
    resolved = _legacy_positional("allgather", legacy, ("name",), {"name": name})
    name = resolved["name"]
    del options  # ring is the only allgather transport
    comm = _rt.comm()
    tl = _rt.timeline()
    t_enter = time.perf_counter()
    result = comm.allgather(obj)
    duration = time.perf_counter() - t_enter
    tl.record(
        "allgather",
        comm.rank,
        t_enter,
        duration,
        category="allgather",
        tensor=name or "object",
    )
    _trace(
        "allgather", "allgather", comm.rank, t_enter, duration,
        tensor=name or "object", bytes=_nbytes(obj),
    )
    return result


def broadcast_weights(target, *legacy, root: int = 0) -> None:
    """Broadcast model weights from ``root`` and install them in place.

    ``target`` is a :class:`repro.nn.Sequential` or a name→array dict.
    In-place installation preserves optimizer-state identity — the same
    property Horovod's broadcast hook relies on.
    """
    resolved = _legacy_positional(
        "broadcast_weights", legacy, ("root",), {"root": root}
    )
    root = resolved["root"]
    if hasattr(target, "named_parameters"):
        params = target.named_parameters()
    elif isinstance(target, dict):
        params = target
    else:
        raise TypeError(
            f"expected a model with named_parameters() or a dict, got {type(target)!r}"
        )
    names = sorted(params)
    payload = [params[n] for n in names] if _rt.rank() == root else None
    received = broadcast(payload, root=root, name="global_variables")
    for name, arr in zip(names, received):
        np.copyto(params[name], arr)
