"""repro.hvd — a Horovod reimplementation on :mod:`repro.mpi`.

Horovod's public surface, as the paper's methodology (§2.3.2) uses it:

- ``init`` / ``size`` / ``rank`` / ``local_rank`` — rank identity, with
  ``local_rank`` available for GPU pinning (one GPU per process).
- ``DistributedOptimizer(opt)`` — "delegates the gradient computation to
  the original optimizer, averages gradients using the Allreduce, and
  then applies those averaged gradients."
- ``BroadcastGlobalVariablesCallback(0)`` — "broadcast initial variable
  states from rank 0 to all other processes … ensures consistent
  initialization of all workers."
- Tensor fusion — "batch small allreduce operations by combining all the
  tensors that are ready to be reduced at a given moment into one
  reduction operation" (:class:`repro.hvd.fusion.FusionBuffer`).
- ``Timeline`` — Chrome-trace recording with the paper's event names
  (``negotiate_broadcast``, ``mpi_broadcast``, ``negotiate_allreduce``,
  ``nccl_allreduce``), viewable in ``chrome://tracing``.

Because ranks are threads, the module-level state is thread-local: each
rank thread calls ``init(comm)`` with its own communicator and sees its
own rank identity, exactly like per-process Horovod.

Collective transport — algorithm, compression, chunking, fusion size —
is configured by one :class:`repro.comms.CollectiveOptions` (re-exported
here) passed to ``init`` or ``DistributedOptimizer`` and threaded down
to the engine unchanged.
"""

from repro.comms import CollectiveOptions
from repro.train import TrainOptions
from repro.hvd.callbacks import (
    BroadcastGlobalVariablesCallback,
    CheckpointCallback,
    FaultInjectionCallback,
    ManagedCheckpointCallback,
    MetricAverageCallback,
    resume_from_checkpoint,
)
from repro.hvd.data import load_sharded
from repro.hvd.fusion import DEFAULT_FUSION_BYTES, FusionBuffer
from repro.hvd.optimizer import DistributedOptimizer
from repro.hvd.ops import allgather, allreduce, broadcast, broadcast_weights
from repro.hvd.runtime import (
    engine,
    init,
    is_initialized,
    local_rank,
    options,
    rank,
    shutdown,
    size,
    timeline,
    tracer,
)
from repro.hvd.timeline import Timeline, TimelineEvent

__all__ = [
    "init",
    "shutdown",
    "is_initialized",
    "size",
    "rank",
    "local_rank",
    "timeline",
    "tracer",
    "engine",
    "options",
    "CollectiveOptions",
    "TrainOptions",
    "allreduce",
    "allgather",
    "broadcast",
    "broadcast_weights",
    "DistributedOptimizer",
    "BroadcastGlobalVariablesCallback",
    "CheckpointCallback",
    "ManagedCheckpointCallback",
    "FaultInjectionCallback",
    "MetricAverageCallback",
    "resume_from_checkpoint",
    "load_sharded",
    "FusionBuffer",
    "DEFAULT_FUSION_BYTES",
    "Timeline",
    "TimelineEvent",
]
