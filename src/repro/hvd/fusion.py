"""Tensor fusion: batching small allreduces.

"A unique feature of Horovod is … to batch small allreduce operations
by combining all the tensors that are ready to be reduced at a given
moment into one reduction operation" (paper §2.2). Horovod's default
fusion buffer is 64 MB; gradients are packed into buffers no larger
than that, each buffer is reduced with a single ring allreduce, and the
results are unpacked back into per-tensor views.

Fewer, larger allreduces ⇒ fewer alpha (latency) terms — the whole
point at 3,072 ranks where each ring step pays 2(p-1) latencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["FusionBuffer", "DEFAULT_FUSION_BYTES"]

DEFAULT_FUSION_BYTES = 64 << 20


class FusionBuffer:
    """Packs name-keyed float tensors into ≤ ``capacity_bytes`` buffers.

    Horovod allocates its fusion buffer *once* and reuses it every step;
    so does this class: :meth:`pack` copies into a preallocated buffer
    (one per dtype, grown on demand) and returns a trimmed view of it.
    The view is only valid until the next ``pack`` of the same dtype —
    callers that need to keep it must copy.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_FUSION_BYTES):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._buffers: Dict[np.dtype, np.ndarray] = {}

    @classmethod
    def from_options(cls, options=None) -> "FusionBuffer":
        """Buffer sized by a :class:`repro.comms.CollectiveOptions`.

        ``options=None`` gives the Horovod default capacity, keeping the
        optimizer's no-argument construction path working unchanged.
        """
        capacity = DEFAULT_FUSION_BYTES if options is None else options.fusion_bytes
        return cls(capacity)

    def plan(self, tensors: Dict[str, np.ndarray]) -> List[List[str]]:
        """Greedy first-fit packing of tensor names into fusion groups.

        Deterministic (sorted by name) so every rank computes the same
        plan without negotiation — matching Horovod's requirement that
        ranks agree on reduction order. A tensor larger than the buffer
        gets its own group (fused in one ring op regardless).
        """
        groups: List[List[str]] = []
        current: List[str] = []
        current_bytes = 0
        for name in sorted(tensors):
            nbytes = tensors[name].nbytes
            if current and current_bytes + nbytes > self.capacity_bytes:
                groups.append(current)
                current = []
                current_bytes = 0
            current.append(name)
            current_bytes += nbytes
        if current:
            groups.append(current)
        return groups

    def pack(self, tensors: Dict[str, np.ndarray], group: Sequence[str]) -> np.ndarray:
        """Flatten the group's tensors into one contiguous buffer (a view
        of a reusable backing array — copy before the next ``pack`` if it
        must outlive it).

        The buffer dtype follows the tensors (float32 gradients stay
        float32); non-float inputs are promoted to float64.
        """
        arrays = [np.asarray(tensors[name]) for name in group]
        dtype = np.result_type(*arrays)
        if dtype.kind != "f":
            dtype = np.dtype(np.float64)
        total = sum(a.size for a in arrays)
        buf = self._buffers.get(dtype)
        if buf is None or buf.size < total:
            buf = np.empty(total, dtype=dtype)
            self._buffers[dtype] = buf
        offset = 0
        for a in arrays:
            buf[offset : offset + a.size] = a.reshape(-1)
            offset += a.size
        return buf[:total]

    @staticmethod
    def unpack(
        buffer: np.ndarray,
        tensors: Dict[str, np.ndarray],
        group: Sequence[str],
    ) -> Dict[str, np.ndarray]:
        """Split a fused buffer back into arrays shaped like the originals."""
        out: Dict[str, np.ndarray] = {}
        offset = 0
        for name in group:
            shape = tensors[name].shape
            size = tensors[name].size
            out[name] = buffer[offset : offset + size].reshape(shape)
            offset += size
        if offset != buffer.size:
            raise ValueError(
                f"fused buffer has {buffer.size} elements, group consumed {offset}"
            )
        return out

    def fused_sizes(self, tensors: Dict[str, np.ndarray]) -> List[int]:
        """Bytes per fusion group — what the cost model charges per ring op."""
        return [
            sum(tensors[name].nbytes for name in group)
            for group in self.plan(tensors)
        ]
