"""Rank-sharded data loading through the Horovod-style API.

``hvd.load_sharded(path)`` is the ingest subsystem seen from a rank
thread that already called :func:`repro.hvd.init`: the rank identity
and communicator come from the thread-local Horovod state, the local
shard parse and the shard-exchange allgather are recorded as timeline
events (``shard_parse``, ``shard_allgather``) alongside the paper's
``negotiate_*`` events, and the returned frame is the full dataset on
every rank — for 1/N of the per-rank parse time, which is exactly the
lever that shrinks the 43.72 s ``negotiate_broadcast`` skew.
"""

from __future__ import annotations

from typing import Optional

from repro.frame.dataframe import DataFrame
from repro.hvd.runtime import _state, clock
from repro.ingest.config import LoaderConfig, ShardSpec
from repro.ingest.shard import read_csv_shard, union_shards

__all__ = ["load_sharded"]


def load_sharded(path, config: Optional[LoaderConfig] = None) -> DataFrame:
    """Load ``path`` sharded across the Horovod world, timeline-traced.

    Equivalent to ``repro.ingest.load_sharded`` with this rank's
    communicator, plus per-phase timeline events. ``config.shard``
    overrides the rank identity (and its ``allgather=False`` skips the
    exchange, returning only the local shard).
    """
    state = _state()
    comm, tl = state.comm, state.timeline
    config = config if config is not None else LoaderConfig(method="sharded")
    shard = config.shard
    if shard is None:
        shard = ShardSpec(rank=comm.rank, world_size=comm.size)

    t0 = clock()
    local = read_csv_shard(
        path,
        shard.rank,
        shard.world_size,
        low_memory=config.effective_low_memory,
    )
    tl.record(
        "shard_parse",
        comm.rank,
        t0,
        clock() - t0,
        category="io",
        rows=len(local),
        world_size=shard.world_size,
    )
    if not shard.allgather or shard.world_size == 1:
        return local

    t1 = clock()
    gathered = comm.allgather(local)
    full = union_shards(gathered)
    tl.record(
        "shard_allgather",
        comm.rank,
        t1,
        clock() - t1,
        category="io",
        rows=len(full),
    )
    full.parse_stats = getattr(local, "parse_stats", None)
    return full
