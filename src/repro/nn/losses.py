"""Loss functions with analytic gradients.

Each loss is a class with ``value(y_true, y_pred)`` returning the scalar
mean loss over the batch and ``grad(y_true, y_pred)`` returning
``dL/dy_pred`` already divided by the batch size, so layer backward
passes can accumulate per-example gradients with plain matmuls.

``CategoricalCrossentropy`` supports the fused softmax gradient: when the
model's last activation is softmax, the combined gradient is simply
``(y_pred - y_true)/N``, which is both faster and numerically exact.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Loss",
    "MeanSquaredError",
    "MeanAbsoluteError",
    "CategoricalCrossentropy",
    "BinaryCrossentropy",
    "get",
]

_EPS = 1e-12


class Loss:
    """Base class for losses."""

    name = "loss"

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        raise NotImplementedError

    def grad(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        return self.value(y_true, y_pred)


class MeanSquaredError(Loss):
    """MSE averaged over every element in the batch."""

    name = "mse"

    def value(self, y_true, y_pred):
        diff = y_pred - y_true
        return float(np.mean(diff * diff))

    def grad(self, y_true, y_pred):
        return 2.0 * (y_pred - y_true) / y_pred.size


class MeanAbsoluteError(Loss):
    """MAE averaged over every element in the batch."""

    name = "mae"

    def value(self, y_true, y_pred):
        return float(np.mean(np.abs(y_pred - y_true)))

    def grad(self, y_true, y_pred):
        return np.sign(y_pred - y_true) / y_pred.size


class CategoricalCrossentropy(Loss):
    """Cross-entropy against one-hot (or soft) targets.

    ``fused_softmax_grad`` is used by ``Sequential`` when the final layer
    activation is softmax: it returns the exact combined gradient of
    softmax followed by cross-entropy.
    """

    name = "categorical_crossentropy"

    def value(self, y_true, y_pred):
        p = np.clip(y_pred, _EPS, 1.0)
        return float(-np.sum(y_true * np.log(p)) / y_true.shape[0])

    def grad(self, y_true, y_pred):
        p = np.clip(y_pred, _EPS, 1.0)
        return -(y_true / p) / y_true.shape[0]

    @staticmethod
    def fused_softmax_grad(y_true, y_pred):
        """Gradient of CE∘softmax w.r.t. the softmax *input* logits."""
        return (y_pred - y_true) / y_true.shape[0]


class BinaryCrossentropy(Loss):
    """Elementwise binary cross-entropy (sigmoid outputs)."""

    name = "binary_crossentropy"

    def value(self, y_true, y_pred):
        p = np.clip(y_pred, _EPS, 1.0 - _EPS)
        return float(
            -np.mean(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p))
        )

    def grad(self, y_true, y_pred):
        p = np.clip(y_pred, _EPS, 1.0 - _EPS)
        return (p - y_true) / (p * (1.0 - p)) / y_true.size


_LOSSES = {
    "mse": MeanSquaredError,
    "mean_squared_error": MeanSquaredError,
    "mae": MeanAbsoluteError,
    "mean_absolute_error": MeanAbsoluteError,
    "categorical_crossentropy": CategoricalCrossentropy,
    "binary_crossentropy": BinaryCrossentropy,
}


def get(name_or_loss) -> Loss:
    """Resolve a loss instance from a name or pass an instance through."""
    if isinstance(name_or_loss, Loss):
        return name_or_loss
    try:
        return _LOSSES[name_or_loss]()
    except KeyError:
        raise ValueError(
            f"unknown loss {name_or_loss!r}; known: {sorted(_LOSSES)}"
        ) from None
