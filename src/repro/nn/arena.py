"""Flat parameter arena: contiguous slabs for parameters and gradients.

The paper's Horovod fixes all follow one principle — *fewer, larger
operations*: tensor fusion batches many small allreduces into one big
ring op. This module applies the same principle to the single-process
training step. A :class:`ParameterArena` owns two contiguous 1-D slabs
(`params_flat`, ``grads_flat``); every layer's ``params[key]`` and
``grads[key]`` arrays become reshaped *views* into those slabs, so

- optimizers can update *every* parameter with one vectorized in-place
  kernel over the slab instead of a Python loop per parameter
  (:meth:`repro.nn.optimizers.Optimizer.apply_arena`),
- :class:`repro.hvd.DistributedOptimizer` can allreduce slab slices
  directly — zero-copy tensor fusion, no pack/unpack step,
- the per-layer dict API (``named_parameters``, ``set_weights``,
  checkpoints, broadcasts) keeps working unchanged, because those code
  paths already mutate arrays in place via ``np.copyto``.

Layout is **sorted by parameter name** — the same deterministic order
:meth:`repro.hvd.fusion.FusionBuffer.plan` packs gradients — so an
allreduce over a slab slice is bit-identical to the packed reference
path, group by group.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

__all__ = ["ParameterArena"]


class ParameterArena:
    """Contiguous storage for every parameter and gradient of a model."""

    def __init__(self, named: Dict[str, np.ndarray], dtype=np.float64):
        if not named:
            raise ValueError("cannot build an arena with no parameters")
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ValueError(f"arena dtype must be floating, got {self.dtype}")
        #: parameter names in slab order (sorted — FusionBuffer's order)
        self.names: List[str] = sorted(named)
        self._layout: Dict[str, Tuple[int, int, Tuple[int, ...]]] = {}
        offset = 0
        for name in self.names:
            arr = np.asarray(named[name])
            self._layout[name] = (offset, offset + arr.size, arr.shape)
            offset += arr.size
        #: total scalar count across all parameters
        self.size = offset
        self.params_flat = np.zeros(offset, dtype=self.dtype)
        self.grads_flat = np.zeros(offset, dtype=self.dtype)
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        for name in self.names:
            start, stop, shape = self._layout[name]
            view = self.params_flat[start:stop].reshape(shape)
            np.copyto(view, named[name])
            self.params[name] = view
            self.grads[name] = self.grads_flat[start:stop].reshape(shape)

    # -- construction ------------------------------------------------------
    @classmethod
    def adopt(cls, model, dtype=None) -> "ParameterArena":
        """Move a built model's parameters into arena storage.

        Replaces every ``layer.params[key]`` with a view into
        ``params_flat`` (current values preserved) and installs zeroed
        gradient views in ``layer.grads``, so backward passes write
        straight into the gradient slab via ``Layer.set_grad``.
        """
        dtype = dtype if dtype is not None else getattr(model, "dtype", np.float64)
        arena = cls(model.named_parameters(), dtype=dtype)
        for layer in model.layers:
            for key in list(layer.params):
                name = f"{layer.name}/{key}"
                layer.params[key] = arena.params[name]
                layer.grads[key] = arena.grads[name]
            layer._arena_grads = True
        return arena

    # -- access ------------------------------------------------------------
    def items(self) -> Iterator[Tuple[str, np.ndarray, np.ndarray]]:
        """Yield ``(name, param_view, grad_view)`` in slab order."""
        for name in self.names:
            yield name, self.params[name], self.grads[name]

    def entries(self) -> Iterator[Tuple[str, slice, Tuple[int, ...]]]:
        """Yield ``(name, slab_slice, shape)`` in slab order."""
        for name in self.names:
            start, stop, shape = self._layout[name]
            yield name, slice(start, stop), shape

    @property
    def nbytes(self) -> int:
        """Bytes of one slab (parameters and gradients are the same size)."""
        return self.params_flat.nbytes

    def zeros_slab(self) -> np.ndarray:
        """A fresh zeroed slab with the arena's geometry (optimizer state)."""
        return np.zeros(self.size, dtype=self.dtype)

    def zero_grads(self) -> None:
        """Reset the gradient slab in place."""
        self.grads_flat.fill(0.0)

    # -- comms -------------------------------------------------------------
    def fusion_groups(self, capacity_bytes: int) -> List[Tuple[int, int, List[str]]]:
        """Slice the slab into allreduce groups of ≤ ``capacity_bytes``.

        Greedy first-fit over the (sorted) layout — exactly the grouping
        :meth:`repro.hvd.fusion.FusionBuffer.plan` computes for the same
        tensors at the same dtype, so the zero-copy arena path reduces
        bit-identical buffers to the packed reference path. A parameter
        larger than the capacity gets its own group.
        """
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        itemsize = self.dtype.itemsize
        groups: List[Tuple[int, int, List[str]]] = []
        cur_names: List[str] = []
        cur_start = 0
        cur_stop = 0
        for name in self.names:
            start, stop, _ = self._layout[name]
            nbytes = (stop - start) * itemsize
            if cur_names and (cur_stop - cur_start) * itemsize + nbytes > capacity_bytes:
                groups.append((cur_start, cur_stop, cur_names))
                cur_names = []
                cur_start = start
            cur_names.append(name)
            cur_stop = stop
        if cur_names:
            groups.append((cur_start, cur_stop, cur_names))
        return groups

    def __repr__(self):
        return (
            f"<ParameterArena {len(self.names)} params, "
            f"{self.size} scalars, dtype={self.dtype.name}>"
        )
