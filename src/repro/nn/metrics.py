"""Evaluation metrics.

Plain functions ``metric(y_true, y_pred) -> float`` over NumPy arrays.
The paper reports *training accuracy* (Figs 6b, 9b, 10b, Table 6) and
*training loss* (Fig 8b); those map to :func:`categorical_accuracy` and
the model loss respectively.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "categorical_accuracy",
    "binary_accuracy",
    "mae",
    "mse",
    "r2_score",
    "get",
]


def categorical_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of rows where the argmax class matches."""
    return float(
        np.mean(np.argmax(y_true, axis=-1) == np.argmax(y_pred, axis=-1))
    )


def binary_accuracy(y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of elements on the correct side of ``threshold``."""
    return float(np.mean((y_pred >= threshold) == (y_true >= threshold)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(y_pred - y_true)))


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    return float(np.mean((y_pred - y_true) ** 2))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 1.0 is perfect, 0.0 is the mean model."""
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


_METRICS = {
    "accuracy": categorical_accuracy,
    "categorical_accuracy": categorical_accuracy,
    "binary_accuracy": binary_accuracy,
    "mae": mae,
    "mse": mse,
    "r2": r2_score,
}


def get(name):
    """Resolve a metric function from a Keras-style name (or callable)."""
    if callable(name):
        return name
    try:
        return _METRICS[name]
    except KeyError:
        raise ValueError(f"unknown metric {name!r}; known: {sorted(_METRICS)}") from None


def metric_name(m) -> str:
    """Human-readable name for a metric passed to ``compile``."""
    if isinstance(m, str):
        return "accuracy" if m == "categorical_accuracy" else m
    return getattr(m, "__name__", str(m))
