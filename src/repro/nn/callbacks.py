"""Training callbacks (Keras-style lifecycle hooks).

The Horovod integration point in the paper is a callback —
``hvd.BroadcastGlobalVariablesHook(0)`` is added to the callbacks list
to broadcast rank 0's initial weights — so the callback protocol here is
what :class:`repro.hvd.BroadcastGlobalVariablesCallback` plugs into.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

__all__ = [
    "Callback",
    "CallbackList",
    "History",
    "EarlyStopping",
    "LearningRateScheduler",
    "LambdaCallback",
]


class Callback:
    """Base callback; the model is attached before training starts."""

    def __init__(self):
        self.model = None

    def set_model(self, model) -> None:
        self.model = model

    def on_train_begin(self, logs: dict | None = None) -> None: ...

    def on_train_end(self, logs: dict | None = None) -> None: ...

    def on_epoch_begin(self, epoch: int, logs: dict | None = None) -> None: ...

    def on_epoch_end(self, epoch: int, logs: dict | None = None) -> None: ...

    def on_batch_begin(self, batch: int, logs: dict | None = None) -> None: ...

    def on_batch_end(self, batch: int, logs: dict | None = None) -> None: ...


class CallbackList:
    """Dispatches lifecycle events to a list of callbacks, in order."""

    def __init__(self, callbacks: Optional[Iterable[Callback]] = None):
        self.callbacks: list[Callback] = list(callbacks or [])

    def append(self, cb: Callback) -> None:
        self.callbacks.append(cb)

    def set_model(self, model) -> None:
        for cb in self.callbacks:
            cb.set_model(model)

    def on_train_begin(self, logs=None):
        for cb in self.callbacks:
            cb.on_train_begin(logs)

    def on_train_end(self, logs=None):
        for cb in self.callbacks:
            cb.on_train_end(logs)

    def on_epoch_begin(self, epoch, logs=None):
        for cb in self.callbacks:
            cb.on_epoch_begin(epoch, logs)

    def on_epoch_end(self, epoch, logs=None):
        for cb in self.callbacks:
            cb.on_epoch_end(epoch, logs)

    def on_batch_begin(self, batch, logs=None):
        for cb in self.callbacks:
            cb.on_batch_begin(batch, logs)

    def on_batch_end(self, batch, logs=None):
        for cb in self.callbacks:
            cb.on_batch_end(batch, logs)


class History(Callback):
    """Records per-epoch logs; ``fit`` returns one, as Keras does."""

    def __init__(self):
        super().__init__()
        self.history: dict[str, list[float]] = {}
        self.epoch: list[int] = []

    def on_train_begin(self, logs=None):
        # Keras semantics: history accumulates across successive fits.
        self.history.setdefault("loss", [])

    def on_epoch_end(self, epoch, logs=None):
        self.epoch.append(epoch)
        for key, value in (logs or {}).items():
            self.history.setdefault(key, []).append(value)


class EarlyStopping(Callback):
    """Stop training when a monitored quantity stops improving."""

    def __init__(
        self,
        monitor: str = "loss",
        min_delta: float = 0.0,
        patience: int = 0,
        mode: str = "min",
    ):
        super().__init__()
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.monitor = monitor
        self.min_delta = abs(float(min_delta))
        self.patience = int(patience)
        self.mode = mode
        self.best: float | None = None
        self.wait = 0
        self.stopped_epoch: int | None = None

    def _improved(self, current: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return current < self.best - self.min_delta
        return current > self.best + self.min_delta

    def on_train_begin(self, logs=None):
        self.best = None
        self.wait = 0
        self.stopped_epoch = None

    def on_epoch_end(self, epoch, logs=None):
        current = (logs or {}).get(self.monitor)
        if current is None:
            return
        if self._improved(current):
            self.best = current
            self.wait = 0
        else:
            self.wait += 1
            if self.wait > self.patience:
                self.stopped_epoch = epoch
                self.model.stop_training = True


class LearningRateScheduler(Callback):
    """Set the optimizer LR each epoch from ``schedule(epoch, lr)``."""

    def __init__(self, schedule: Callable[[int, float], float]):
        super().__init__()
        self.schedule = schedule

    def on_epoch_begin(self, epoch, logs=None):
        new_lr = float(self.schedule(epoch, self.model.optimizer.lr))
        if new_lr <= 0.0:
            raise ValueError(f"schedule produced non-positive LR {new_lr}")
        self.model.optimizer.lr = new_lr


class LambdaCallback(Callback):
    """Ad-hoc callback built from plain functions (Keras-compatible)."""

    def __init__(
        self,
        on_train_begin=None,
        on_train_end=None,
        on_epoch_begin=None,
        on_epoch_end=None,
        on_batch_begin=None,
        on_batch_end=None,
    ):
        super().__init__()
        noop2 = lambda a, b=None: None  # noqa: E731
        noop1 = lambda a=None: None  # noqa: E731
        self._on_train_begin = on_train_begin or noop1
        self._on_train_end = on_train_end or noop1
        self._on_epoch_begin = on_epoch_begin or noop2
        self._on_epoch_end = on_epoch_end or noop2
        self._on_batch_begin = on_batch_begin or noop2
        self._on_batch_end = on_batch_end or noop2

    def on_train_begin(self, logs=None):
        self._on_train_begin(logs)

    def on_train_end(self, logs=None):
        self._on_train_end(logs)

    def on_epoch_begin(self, epoch, logs=None):
        self._on_epoch_begin(epoch, logs)

    def on_epoch_end(self, epoch, logs=None):
        self._on_epoch_end(epoch, logs)

    def on_batch_begin(self, batch, logs=None):
        self._on_batch_begin(batch, logs)

    def on_batch_end(self, batch, logs=None):
        self._on_batch_end(batch, logs)
