"""repro.nn — a from-scratch, Keras-like deep-learning framework on NumPy.

The CANDLE benchmarks are written against Keras; this subpackage provides
the subset of the Keras API those benchmarks need, implemented entirely
with vectorized NumPy so the accuracy experiments in the paper can be run
for real (at reduced data scale) without TensorFlow.

Public API mirrors Keras naming:

- :class:`repro.nn.models.Sequential` with ``compile/fit/evaluate/predict``
- layers: ``Dense``, ``Conv1D``, ``MaxPooling1D``, ``Flatten``,
  ``Dropout``, ``Activation``, ``LocallyConnected1D``
- optimizers: ``SGD``, ``Adam``, ``RMSprop``
- losses: ``categorical_crossentropy``, ``mse``, ``mae``
- callbacks: ``Callback``, ``History``, ``EarlyStopping``,
  ``LearningRateScheduler``
"""

from repro.nn import activations, initializers, losses, metrics, regularizers
from repro.nn.arena import ParameterArena
from repro.nn.callbacks import (
    Callback,
    CallbackList,
    EarlyStopping,
    History,
    LambdaCallback,
    LearningRateScheduler,
)
from repro.nn.layers import (
    Activation,
    AveragePooling1D,
    BatchNormalization,
    Conv1D,
    GlobalMaxPooling1D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LocallyConnected1D,
    MaxPooling1D,
)
from repro.nn.models import Sequential
from repro.nn.serialization import CheckpointError, load_checkpoint, save_checkpoint
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSprop, get as get_optimizer

__all__ = [
    "activations",
    "initializers",
    "losses",
    "metrics",
    "regularizers",
    "Callback",
    "CallbackList",
    "EarlyStopping",
    "History",
    "LambdaCallback",
    "LearningRateScheduler",
    "Activation",
    "AveragePooling1D",
    "BatchNormalization",
    "Conv1D",
    "GlobalMaxPooling1D",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "LocallyConnected1D",
    "MaxPooling1D",
    "ParameterArena",
    "Sequential",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointError",
    "SGD",
    "Adam",
    "Optimizer",
    "RMSprop",
    "get_optimizer",
]
