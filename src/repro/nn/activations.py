"""Activation functions and their derivatives.

Every activation is a pair of vectorized functions:

- ``f(x)`` — the forward value.
- ``f_grad(x, y)`` — the elementwise derivative ``df/dx`` evaluated with
  access to both the input ``x`` and the already-computed output ``y``
  (several derivatives are cheaper in terms of ``y``).

``softmax`` is special-cased: its Jacobian is not elementwise, so models
pair it with categorical cross-entropy and use the fused
``softmax + cross-entropy`` gradient (see :mod:`repro.nn.losses`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["get", "ACTIVATIONS", "relu", "sigmoid", "tanh", "softmax", "linear"]


def linear(x: np.ndarray) -> np.ndarray:
    """Identity activation."""
    return x


def _linear_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit: ``max(x, 0)``."""
    return np.maximum(x, 0.0)


def _relu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid (dtype-preserving)."""
    out = np.empty_like(x, dtype=np.result_type(x, np.float32))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def _tanh_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return 1.0 - y * y


def softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise softmax over the last axis, shifted for stability."""
    shifted = x - np.max(x, axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=-1, keepdims=True)


def _softmax_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    # Elementwise surrogate; exact only when fused with cross-entropy.
    # Kept so an Activation('softmax') layer used standalone still trains
    # (diagonal of the softmax Jacobian).
    return y * (1.0 - y)


ACTIVATIONS: dict[str, tuple[Callable, Callable]] = {
    "linear": (linear, _linear_grad),
    "relu": (relu, _relu_grad),
    "sigmoid": (sigmoid, _sigmoid_grad),
    "tanh": (tanh, _tanh_grad),
    "softmax": (softmax, _softmax_grad),
}


def get(name: str) -> tuple[Callable, Callable]:
    """Look up ``(forward, grad)`` for an activation by Keras-style name.

    Raises ``ValueError`` for unknown names so typos fail fast.
    """
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; known: {sorted(ACTIVATIONS)}"
        ) from None
