"""Optimizers: SGD, Adam, RMSprop — the three the CANDLE P1 suite uses.

Table 1 of the paper: NT3 and P1B3 train with ``sgd``, P1B1 with
``adam``, P1B2 with ``rmsprop``. All optimizers expose a mutable ``lr``
attribute so the paper's *linear learning-rate scaling*
(``lr × nprocs``, §2.3.2) and ``LearningRateScheduler`` callbacks can
adjust it, and an ``apply_gradients`` entry point that
:class:`repro.hvd.DistributedOptimizer` wraps to average gradients over
ranks before the update — exactly Horovod's structure.

State (momenta, moment estimates) is keyed by parameter name so
optimizers survive weight broadcasts that replace the arrays.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["Optimizer", "SGD", "RMSprop", "Adam", "get"]

Params = Dict[str, np.ndarray]


class Optimizer:
    """Base optimizer.

    Subclasses implement :meth:`_update_one` which mutates a single
    parameter array in place given its gradient.
    """

    def __init__(self, lr: float = 0.01, decay: float = 0.0):
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if decay < 0.0:
            raise ValueError(f"decay must be non-negative, got {decay}")
        self.lr = float(lr)
        self.decay = float(decay)
        self.iterations = 0
        self._state: dict[str, dict[str, np.ndarray]] = {}

    # -- public API ------------------------------------------------------
    def apply_gradients(self, params: Params, grads: Params) -> None:
        """Apply one update step to every parameter, in place.

        ``params`` and ``grads`` are name-keyed dicts with matching keys;
        missing gradients (e.g. frozen layers) are skipped.
        """
        self.iterations += 1
        lr_t = self._current_lr()
        for name, p in params.items():
            g = grads.get(name)
            if g is None:
                continue
            if g.shape != p.shape:
                raise ValueError(
                    f"gradient shape {g.shape} != param shape {p.shape} for {name!r}"
                )
            self._update_one(name, p, g, lr_t)

    def scale_lr(self, factor: float) -> None:
        """Multiply the learning rate — the paper's linear LR scaling."""
        if factor <= 0.0:
            raise ValueError(f"LR scale factor must be positive, got {factor}")
        self.lr *= factor

    def state_slot(self, name: str) -> dict[str, np.ndarray]:
        """Per-parameter optimizer state (created on first use)."""
        return self._state.setdefault(name, {})

    # -- subclass hooks ----------------------------------------------------
    def _current_lr(self) -> float:
        if self.decay:
            return self.lr / (1.0 + self.decay * self.iterations)
        return self.lr

    def _update_one(self, name: str, p: np.ndarray, g: np.ndarray, lr: float) -> None:
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}(lr={self.lr})"


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and Nesterov."""

    def __init__(
        self,
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        decay: float = 0.0,
    ):
        super().__init__(lr=lr, decay=decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)

    def _update_one(self, name, p, g, lr):
        if self.momentum == 0.0:
            p -= lr * g
            return
        slot = self.state_slot(name)
        v = slot.get("velocity")
        if v is None:
            v = slot["velocity"] = np.zeros_like(p)
        np.multiply(v, self.momentum, out=v)
        v -= lr * g
        if self.nesterov:
            p += self.momentum * v - lr * g
        else:
            p += v


class RMSprop(Optimizer):
    """RMSprop: scale each coordinate by a running RMS of its gradient."""

    def __init__(self, lr: float = 0.001, rho: float = 0.9, epsilon: float = 1e-7, decay: float = 0.0):
        super().__init__(lr=lr, decay=decay)
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho = float(rho)
        self.epsilon = float(epsilon)

    def _update_one(self, name, p, g, lr):
        slot = self.state_slot(name)
        acc = slot.get("accumulator")
        if acc is None:
            acc = slot["accumulator"] = np.zeros_like(p)
        np.multiply(acc, self.rho, out=acc)
        acc += (1.0 - self.rho) * g * g
        p -= lr * g / (np.sqrt(acc) + self.epsilon)


class Adam(Optimizer):
    """Adam: bias-corrected first/second moment estimates."""

    def __init__(
        self,
        lr: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-7,
        decay: float = 0.0,
    ):
        super().__init__(lr=lr, decay=decay)
        for nm, b in (("beta_1", beta_1), ("beta_2", beta_2)):
            if not 0.0 <= b < 1.0:
                raise ValueError(f"{nm} must be in [0, 1), got {b}")
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)

    def _update_one(self, name, p, g, lr):
        slot = self.state_slot(name)
        m = slot.get("m")
        if m is None:
            m = slot["m"] = np.zeros_like(p)
            slot["v"] = np.zeros_like(p)
        v = slot["v"]
        t = self.iterations
        np.multiply(m, self.beta_1, out=m)
        m += (1.0 - self.beta_1) * g
        np.multiply(v, self.beta_2, out=v)
        v += (1.0 - self.beta_2) * g * g
        m_hat = m / (1.0 - self.beta_1**t)
        v_hat = v / (1.0 - self.beta_2**t)
        p -= lr * m_hat / (np.sqrt(v_hat) + self.epsilon)


_OPTIMIZERS = {"sgd": SGD, "rmsprop": RMSprop, "adam": Adam}


def get(spec, lr: float | None = None) -> Optimizer:
    """Resolve an optimizer from a name or instance.

    ``lr=None`` keeps each optimizer's Keras default (P1B1 passes no
    learning rate in Table 1, so Adam's default 0.001 applies).
    """
    if isinstance(spec, Optimizer):
        if lr is not None:
            spec.lr = float(lr)
        return spec
    try:
        cls = _OPTIMIZERS[spec]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {spec!r}; known: {sorted(_OPTIMIZERS)}"
        ) from None
    return cls() if lr is None else cls(lr=lr)
