"""Optimizers: SGD, Adam, RMSprop — the three the CANDLE P1 suite uses.

Table 1 of the paper: NT3 and P1B3 train with ``sgd``, P1B1 with
``adam``, P1B2 with ``rmsprop``. All optimizers expose a mutable ``lr``
attribute so the paper's *linear learning-rate scaling*
(``lr × nprocs``, §2.3.2) and ``LearningRateScheduler`` callbacks can
adjust it, and an ``apply_gradients`` entry point that
:class:`repro.hvd.DistributedOptimizer` wraps to average gradients over
ranks before the update — exactly Horovod's structure.

State (momenta, moment estimates) is keyed by parameter name so
optimizers survive weight broadcasts that replace the arrays.
"""

from __future__ import annotations

import warnings
from typing import Dict

import numpy as np

__all__ = ["Optimizer", "SGD", "RMSprop", "Adam", "get"]

Params = Dict[str, np.ndarray]


class Optimizer:
    """Base optimizer.

    Subclasses implement :meth:`_update_one` which mutates a single
    parameter array in place given its gradient. Optimizers with a
    fused-kernel path additionally override :meth:`_arena_step`, which
    updates a :class:`repro.nn.arena.ParameterArena`'s whole parameter
    slab with a handful of vectorized in-place operations — bit-identical
    to looping :meth:`_update_one`, but without the per-parameter Python
    and allocation overhead.
    """

    def __init__(self, lr: float = 0.01, decay: float = 0.0):
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if decay < 0.0:
            raise ValueError(f"decay must be non-negative, got {decay}")
        self.lr = float(lr)
        self.decay = float(decay)
        self.iterations = 0
        self._state: dict[str, dict[str, np.ndarray]] = {}
        # arena-path machinery: flat state slabs keyed by slot name, the
        # per-parameter views mirrored into _state, and scratch buffers
        self._arena_slabs: dict[str, np.ndarray] = {}
        self._arena_mirrors: dict[str, dict[str, np.ndarray]] = {}
        self._arena_scratch: dict[str, np.ndarray] = {}
        self._warned_orphan_grads = False

    # -- public API ------------------------------------------------------
    def apply_gradients(self, params: Params, grads: Params) -> None:
        """Apply one update step to every parameter, in place.

        ``params`` and ``grads`` are name-keyed dicts with matching keys;
        missing gradients (e.g. frozen layers) are skipped. A gradient
        whose key matches *no* parameter is a sign of arena/dict drift —
        it warns once and is ignored.
        """
        self._check_orphan_grads(params, grads)
        self.iterations += 1
        lr_t = self._current_lr()
        for name, p in params.items():
            g = grads.get(name)
            if g is None:
                continue
            if g.shape != p.shape:
                raise ValueError(
                    f"gradient shape {g.shape} != param shape {p.shape} for {name!r}"
                )
            self._update_one(name, p, g, lr_t)

    def apply_arena(self, arena) -> None:
        """One fused update over an arena's parameter/gradient slabs.

        Equivalent to ``apply_gradients`` over the arena's per-parameter
        views (and bit-identical to it), but subclasses with a fused
        kernel touch each slab once instead of looping parameters.
        """
        self.iterations += 1
        self._arena_step(arena, self._current_lr())

    def scale_lr(self, factor: float) -> None:
        """Multiply the learning rate — the paper's linear LR scaling."""
        if factor <= 0.0:
            raise ValueError(f"LR scale factor must be positive, got {factor}")
        self.lr *= factor

    def state_slot(self, name: str) -> dict[str, np.ndarray]:
        """Per-parameter optimizer state (created on first use)."""
        return self._state.setdefault(name, {})

    # -- arena plumbing ----------------------------------------------------
    def _arena_step(self, arena, lr: float) -> None:
        """Fallback fused step: per-parameter updates over arena views.

        Subclasses override this with true slab-wide kernels; the
        fallback keeps every custom :meth:`_update_one` optimizer
        working against arena-built models.
        """
        for name, p, g in arena.items():
            self._update_one(name, p, g, lr)

    def _arena_state(self, arena, slot: str) -> np.ndarray:
        """A flat state slab parallel to the arena's parameter slab.

        Per-parameter views of the slab are mirrored into ``_state`` so
        checkpointing sees fused-path state exactly like per-parameter
        state. The mirror set is re-verified each call (cheap identity
        checks): state loaded from a checkpoint is adopted into the
        slab, and state cleared by a restore is re-zeroed.
        """
        slab = self._arena_slabs.get(slot)
        if slab is None or slab.size != arena.size:
            slab = arena.zeros_slab()
            self._arena_slabs[slot] = slab
            self._arena_mirrors[slot] = {
                name: slab[sl].reshape(shape) for name, sl, shape in arena.entries()
            }
        mirrors = self._arena_mirrors[slot]
        for name, view in mirrors.items():
            slots = self._state.setdefault(name, {})
            cur = slots.get(slot)
            if cur is view:
                continue
            if cur is None:
                view[...] = 0.0  # state was reset (e.g. fresh checkpoint)
            else:
                view[...] = cur  # adopt externally loaded state
            slots[slot] = view
        return slab

    def _scratch(self, arena, key: str) -> np.ndarray:
        """A reusable slab-sized work buffer (contents undefined)."""
        buf = self._arena_scratch.get(key)
        if buf is None or buf.size != arena.size or buf.dtype != arena.dtype:
            buf = np.empty(arena.size, dtype=arena.dtype)
            self._arena_scratch[key] = buf
        return buf

    def _check_orphan_grads(self, params: Params, grads: Params) -> None:
        if self._warned_orphan_grads or len(grads) <= len(params):
            return
        orphans = [k for k in grads if k not in params]
        if orphans:
            self._warned_orphan_grads = True
            warnings.warn(
                f"gradients {sorted(orphans)!r} match no parameter and will "
                "be ignored — parameter/gradient naming has drifted "
                "(renamed layer, stale arena, or mismatched model)",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- subclass hooks ----------------------------------------------------
    def _current_lr(self) -> float:
        if self.decay:
            return self.lr / (1.0 + self.decay * self.iterations)
        return self.lr

    def _update_one(self, name: str, p: np.ndarray, g: np.ndarray, lr: float) -> None:
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}(lr={self.lr})"


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and Nesterov."""

    def __init__(
        self,
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        decay: float = 0.0,
    ):
        super().__init__(lr=lr, decay=decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)

    def _update_one(self, name, p, g, lr):
        if self.momentum == 0.0:
            p -= lr * g
            return
        slot = self.state_slot(name)
        v = slot.get("velocity")
        if v is None:
            v = slot["velocity"] = np.zeros_like(p)
        np.multiply(v, self.momentum, out=v)
        v -= lr * g
        if self.nesterov:
            p += self.momentum * v - lr * g
        else:
            p += v

    def _arena_step(self, arena, lr):
        # same elementwise ops as _update_one, over the whole slab at once
        p, g = arena.params_flat, arena.grads_flat
        s = self._scratch(arena, "s")
        if self.momentum == 0.0:
            np.multiply(g, lr, out=s)
            p -= s
            return
        v = self._arena_state(arena, "velocity")
        np.multiply(v, self.momentum, out=v)
        np.multiply(g, lr, out=s)  # lr * g, reused below for nesterov
        v -= s
        if self.nesterov:
            s2 = self._scratch(arena, "s2")
            np.multiply(v, self.momentum, out=s2)
            s2 -= s
            p += s2
        else:
            p += v


class RMSprop(Optimizer):
    """RMSprop: scale each coordinate by a running RMS of its gradient."""

    def __init__(self, lr: float = 0.001, rho: float = 0.9, epsilon: float = 1e-7, decay: float = 0.0):
        super().__init__(lr=lr, decay=decay)
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho = float(rho)
        self.epsilon = float(epsilon)

    def _update_one(self, name, p, g, lr):
        slot = self.state_slot(name)
        acc = slot.get("accumulator")
        if acc is None:
            acc = slot["accumulator"] = np.zeros_like(p)
        np.multiply(acc, self.rho, out=acc)
        acc += (1.0 - self.rho) * g * g
        p -= lr * g / (np.sqrt(acc) + self.epsilon)

    def _arena_step(self, arena, lr):
        p, g = arena.params_flat, arena.grads_flat
        acc = self._arena_state(arena, "accumulator")
        a = self._scratch(arena, "a")
        b = self._scratch(arena, "b")
        np.multiply(acc, self.rho, out=acc)
        np.multiply(g, 1.0 - self.rho, out=a)
        a *= g
        acc += a
        np.multiply(g, lr, out=a)
        np.sqrt(acc, out=b)
        b += self.epsilon
        a /= b
        p -= a


class Adam(Optimizer):
    """Adam: bias-corrected first/second moment estimates."""

    def __init__(
        self,
        lr: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-7,
        decay: float = 0.0,
    ):
        super().__init__(lr=lr, decay=decay)
        for nm, b in (("beta_1", beta_1), ("beta_2", beta_2)):
            if not 0.0 <= b < 1.0:
                raise ValueError(f"{nm} must be in [0, 1), got {b}")
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)

    def _update_one(self, name, p, g, lr):
        slot = self.state_slot(name)
        m = slot.get("m")
        if m is None:
            m = slot["m"] = np.zeros_like(p)
            slot["v"] = np.zeros_like(p)
        v = slot["v"]
        t = self.iterations
        np.multiply(m, self.beta_1, out=m)
        m += (1.0 - self.beta_1) * g
        np.multiply(v, self.beta_2, out=v)
        v += (1.0 - self.beta_2) * g * g
        m_hat = m / (1.0 - self.beta_1**t)
        v_hat = v / (1.0 - self.beta_2**t)
        p -= lr * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def _arena_step(self, arena, lr):
        p, g = arena.params_flat, arena.grads_flat
        m = self._arena_state(arena, "m")
        v = self._arena_state(arena, "v")
        a = self._scratch(arena, "a")
        b = self._scratch(arena, "b")
        t = self.iterations
        np.multiply(m, self.beta_1, out=m)
        np.multiply(g, 1.0 - self.beta_1, out=a)
        m += a
        np.multiply(v, self.beta_2, out=v)
        np.multiply(g, 1.0 - self.beta_2, out=a)
        a *= g
        v += a
        np.divide(m, 1.0 - self.beta_1**t, out=a)  # m_hat
        np.divide(v, 1.0 - self.beta_2**t, out=b)  # v_hat
        np.sqrt(b, out=b)
        b += self.epsilon
        a *= lr
        a /= b
        p -= a


_OPTIMIZERS = {"sgd": SGD, "rmsprop": RMSprop, "adam": Adam}


def get(spec, lr: float | None = None) -> Optimizer:
    """Resolve an optimizer from a name or instance.

    ``lr=None`` keeps each optimizer's Keras default (P1B1 passes no
    learning rate in Table 1, so Adam's default 0.001 applies).
    """
    if isinstance(spec, Optimizer):
        if lr is not None:
            spec.lr = float(lr)
        return spec
    try:
        cls = _OPTIMIZERS[spec]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {spec!r}; known: {sorted(_OPTIMIZERS)}"
        ) from None
    return cls() if lr is None else cls(lr=lr)
