"""Numerical gradient checking for layers and models.

Used by the test suite to verify every analytic backward pass against
central finite differences — the standard correctness gate for a
from-scratch autodiff stack.
"""

from __future__ import annotations

import numpy as np

__all__ = ["numeric_param_grads", "numeric_input_grad", "max_relative_error"]


def _loss_of(model, x: np.ndarray, y: np.ndarray) -> float:
    y_pred = model._forward(x, training=False)
    return model.loss.value(y, y_pred) + model._regularization_penalty()


def numeric_param_grads(model, x: np.ndarray, y: np.ndarray, eps: float = 1e-6) -> dict[str, np.ndarray]:
    """Central-difference gradients of the model loss w.r.t. every parameter."""
    grads: dict[str, np.ndarray] = {}
    for name, param in model.named_parameters().items():
        g = np.zeros_like(param)
        flat = param.reshape(-1)
        gflat = g.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = _loss_of(model, x, y)
            flat[i] = orig - eps
            minus = _loss_of(model, x, y)
            flat[i] = orig
            gflat[i] = (plus - minus) / (2.0 * eps)
        grads[name] = g
    return grads


def numeric_input_grad(model, x: np.ndarray, y: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of the model loss w.r.t. the input."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = _loss_of(model, x, y)
        flat[i] = orig - eps
        minus = _loss_of(model, x, y)
        flat[i] = orig
        gflat[i] = (plus - minus) / (2.0 * eps)
    return g


def max_relative_error(a: np.ndarray, b: np.ndarray, floor: float = 1e-8) -> float:
    """Elementwise max of |a-b| / max(|a|, |b|, floor)."""
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), floor)
    return float(np.max(np.abs(a - b) / denom))
