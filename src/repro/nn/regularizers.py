"""Weight regularizers (L1/L2 penalties), Keras-style.

A regularizer contributes ``penalty(w)`` to the loss and ``grad(w)`` to
the kernel gradient. P1B2 in the paper uses L2 regularization on its MLP
("multilayer perceptron network with regularization").
"""

from __future__ import annotations

import numpy as np

__all__ = ["Regularizer", "L1", "L2", "L1L2", "l1", "l2", "l1_l2", "get"]


class Regularizer:
    """Base class; subclasses define penalty and its gradient."""

    def penalty(self, w: np.ndarray) -> float:
        raise NotImplementedError

    def grad(self, w: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class L1L2(Regularizer):
    """Combined penalty ``l1*sum|w| + l2*sum(w^2)``."""

    def __init__(self, l1: float = 0.0, l2: float = 0.0):
        self.l1 = float(l1)
        self.l2 = float(l2)

    def penalty(self, w):
        p = 0.0
        if self.l1:
            p += self.l1 * float(np.sum(np.abs(w)))
        if self.l2:
            p += self.l2 * float(np.sum(w * w))
        return p

    def grad(self, w):
        g = np.zeros_like(w)
        if self.l1:
            g += self.l1 * np.sign(w)
        if self.l2:
            g += 2.0 * self.l2 * w
        return g

    def __repr__(self):
        return f"L1L2(l1={self.l1}, l2={self.l2})"


class L1(L1L2):
    """Pure L1 (lasso) penalty."""

    def __init__(self, l1: float = 0.01):
        super().__init__(l1=l1, l2=0.0)


class L2(L1L2):
    """Pure L2 (ridge / weight decay) penalty."""

    def __init__(self, l2: float = 0.01):
        super().__init__(l1=0.0, l2=l2)


def l1(l1: float = 0.01) -> L1:
    """Keras-style factory for an L1 regularizer."""
    return L1(l1)


def l2(l2: float = 0.01) -> L2:
    """Keras-style factory for an L2 regularizer."""
    return L2(l2)


def l1_l2(l1: float = 0.01, l2: float = 0.01) -> L1L2:
    """Keras-style factory for a combined L1+L2 regularizer."""
    return L1L2(l1=l1, l2=l2)


def get(spec):
    """Resolve a regularizer from ``None``, an instance, or a name."""
    if spec is None or isinstance(spec, Regularizer):
        return spec
    factories = {"l1": l1, "l2": l2, "l1_l2": l1_l2}
    try:
        return factories[spec]()
    except KeyError:
        raise ValueError(
            f"unknown regularizer {spec!r}; known: {sorted(factories)}"
        ) from None
