"""Core layers: Dense, Dropout, Activation, Flatten.

These four plus the conv/pooling layers in
:mod:`repro.nn.layers.conv` cover every architecture in the CANDLE P1
suite (NT3's 1-D CNN and the three MLPs).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import activations as _act
from repro.nn import initializers as _init
from repro.nn import regularizers as _reg
from repro.nn.layers.base import Layer

__all__ = ["Dense", "Dropout", "Activation", "Flatten"]


class Dense(Layer):
    """Fully connected layer: ``y = activation(x @ kernel + bias)``.

    Accepts an optional fused ``activation`` (Keras-style) and an optional
    kernel regularizer (used by P1B2).
    """

    def __init__(
        self,
        units: int,
        activation: Optional[str] = None,
        kernel_initializer: str = "glorot_uniform",
        kernel_regularizer=None,
        use_bias: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.activation_name = activation
        self._act_fn, self._act_grad = (
            _act.get(activation) if activation else (None, None)
        )
        self.kernel_initializer = kernel_initializer
        self.kernel_regularizer = _reg.get(kernel_regularizer)
        self.use_bias = bool(use_bias)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense expects flat input, got shape {input_shape}; "
                "add a Flatten layer first"
            )
        init = _init.get(self.kernel_initializer)
        self.add_param("kernel", init((input_shape[0], self.units), rng))
        if self.use_bias:
            self.add_param("bias", np.zeros(self.units))
        self.input_shape = tuple(input_shape)
        self.output_shape = (self.units,)
        self.built = True

    def forward(self, x, training=False):
        self._require_built()
        z = x @ self.params["kernel"]
        if self.use_bias:
            z += self.params["bias"]  # z is fresh from the matmul
        if self._act_fn is None:
            self._cache = (x, None, None)
            return z
        y = self._act_fn(z)
        self._cache = (x, z, y)
        return y

    def backward(self, dy):
        x, z, y = self._cache
        if self._act_fn is not None:
            dy = dy * self._act_grad(z, y)
        dst = self.grads.get("kernel") if self._arena_grads else None
        if (
            dst is not None
            and self.kernel_regularizer is None
            and dst.dtype == np.result_type(x, dy)
        ):
            np.matmul(x.T, dy, out=dst)  # straight into the arena slab
        else:
            dk = x.T @ dy
            if self.kernel_regularizer is not None:
                dk += self.kernel_regularizer.grad(self.params["kernel"])
            self.set_grad("kernel", dk)
        if self.use_bias:
            bdst = self.grads.get("bias") if self._arena_grads else None
            if bdst is not None and bdst.dtype == dy.dtype:
                np.sum(dy, axis=0, out=bdst)
            else:
                self.set_grad("bias", dy.sum(axis=0))
        return dy @ self.params["kernel"].T

    def backward_from_logits(self, dz: np.ndarray) -> np.ndarray:
        """Backward given a gradient w.r.t. the pre-activation logits.

        Used by ``Sequential`` for the fused softmax+cross-entropy
        gradient; skips the activation-derivative product.
        """
        saved = self._act_fn, self._act_grad
        self._act_fn = self._act_grad = None
        try:
            return self.backward(dz)
        finally:
            self._act_fn, self._act_grad = saved

    def regularization_penalty(self):
        if self.kernel_regularizer is None or not self.built:
            return 0.0
        return self.kernel_regularizer.penalty(self.params["kernel"])


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``.

    The mask is drawn from the layer's own Generator, seeded at build
    time from the model RNG, so SPMD ranks can be given distinct dropout
    streams while weight init stays broadcast-consistent.
    """

    def __init__(self, rate: float, name: Optional[str] = None):
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng: np.random.Generator | None = None
        self._mask: np.ndarray | None = None

    def build(self, input_shape, rng):
        super().build(input_shape, rng)
        self._rng = np.random.default_rng(rng.integers(0, 2**63 - 1))

    def forward(self, x, training=False):
        self._require_built()
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # draw in float64 (keeps the mask stream identical across model
        # dtypes), then cast so a float32 model stays float32 end to end
        self._mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, dy):
        if self._mask is None:
            return dy
        return dy * self._mask


class Activation(Layer):
    """Standalone activation layer (e.g. ``Activation('softmax')``).

    ``Sequential`` detects a trailing softmax Activation and fuses its
    gradient with categorical cross-entropy for exactness.
    """

    def __init__(self, activation: str, name: Optional[str] = None):
        super().__init__(name=name)
        self.activation_name = activation
        self._fn, self._grad = _act.get(activation)
        self._cache: tuple | None = None

    @property
    def is_softmax(self) -> bool:
        return self.activation_name == "softmax"

    def forward(self, x, training=False):
        self._require_built()
        y = self._fn(x)
        self._cache = (x, y)
        return y

    def backward(self, dy):
        x, y = self._cache
        return dy * self._grad(x, y)

    def backward_fused(self, dz: np.ndarray) -> np.ndarray:
        """Pass through a pre-fused gradient (softmax+CE)."""
        return dz


class Flatten(Layer):
    """Collapse all per-example dims into one (NT3: conv stack → dense)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._batch_shape: Tuple[int, ...] | None = None

    def build(self, input_shape, rng):
        self.input_shape = tuple(input_shape)
        self.output_shape = (int(np.prod(input_shape)),)
        self.built = True

    def forward(self, x, training=False):
        self._require_built()
        self._batch_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy):
        return dy.reshape(self._batch_shape)
