"""Neural-network layers (Keras-compatible subset used by CANDLE P1)."""

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import (
    AveragePooling1D,
    Conv1D,
    GlobalMaxPooling1D,
    LocallyConnected1D,
    MaxPooling1D,
)
from repro.nn.layers.normalization import BatchNormalization
from repro.nn.layers.core import Activation, Dense, Dropout, Flatten

__all__ = [
    "Layer",
    "Dense",
    "Dropout",
    "Activation",
    "Flatten",
    "Conv1D",
    "AveragePooling1D",
    "GlobalMaxPooling1D",
    "BatchNormalization",
    "MaxPooling1D",
    "LocallyConnected1D",
]
