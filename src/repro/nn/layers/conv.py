"""1-D convolutional, pooling, and locally connected layers.

NT3 is "a 1D convolutional network … multiple 1D convolutional layers
interleaved with pooling layers followed by final dense layers"; P1B3
uses "convolution-like" (locally connected) layers. All forward passes
are vectorized with ``sliding_window_view`` + ``tensordot`` — no Python
loops over the batch or the sequence (see the HPC guide's vectorization
rules); only ``LocallyConnected1D``'s input-gradient scatter loops over
kernel taps (a ``kernel_size``-length loop).

Layout is Keras channels-last: ``(batch, steps, channels)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn import activations as _act
from repro.nn import initializers as _init
from repro.nn.layers.base import Layer

__all__ = [
    "Conv1D",
    "MaxPooling1D",
    "AveragePooling1D",
    "GlobalMaxPooling1D",
    "LocallyConnected1D",
]


def _pad_same(x: np.ndarray, kernel_size: int) -> tuple[np.ndarray, int, int]:
    """Zero-pad the steps axis so a stride-1 'valid' conv preserves length."""
    total = kernel_size - 1
    left = total // 2
    right = total - left
    if total == 0:
        return x, 0, 0
    return np.pad(x, ((0, 0), (left, right), (0, 0))), left, right


class Conv1D(Layer):
    """Stride-1 1-D convolution (cross-correlation, as in Keras).

    Kernel shape is ``(kernel_size, in_channels, filters)``. Supports
    ``padding`` of ``'valid'`` or ``'same'`` and a fused activation.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        activation: Optional[str] = None,
        padding: str = "valid",
        kernel_initializer: str = "glorot_uniform",
        use_bias: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if filters <= 0 or kernel_size <= 0:
            raise ValueError("filters and kernel_size must be positive")
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.padding = padding
        self.activation_name = activation
        self._act_fn, self._act_grad = (
            _act.get(activation) if activation else (None, None)
        )
        self.kernel_initializer = kernel_initializer
        self.use_bias = bool(use_bias)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise ValueError(
                f"Conv1D expects (steps, channels) input, got {input_shape}"
            )
        steps, channels = input_shape
        if self.padding == "valid" and steps < self.kernel_size:
            raise ValueError(
                f"input length {steps} shorter than kernel {self.kernel_size}"
            )
        init = _init.get(self.kernel_initializer)
        self.add_param(
            "kernel", init((self.kernel_size, channels, self.filters), rng)
        )
        if self.use_bias:
            self.add_param("bias", np.zeros(self.filters))
        out_steps = steps if self.padding == "same" else steps - self.kernel_size + 1
        self.input_shape = tuple(input_shape)
        self.output_shape = (out_steps, self.filters)
        self.built = True

    def forward(self, x, training=False):
        self._require_built()
        if self.padding == "same":
            xp, self._pad_l, self._pad_r = _pad_same(x, self.kernel_size)
        else:
            xp, self._pad_l, self._pad_r = x, 0, 0
        # windows: (N, out_steps, channels, kernel_size)
        win = sliding_window_view(xp, self.kernel_size, axis=1)
        z = np.tensordot(win, self.params["kernel"], axes=([3, 2], [0, 1]))
        if self.use_bias:
            z += self.params["bias"]  # z is fresh from the tensordot
        if self._act_fn is None:
            self._cache = (win, None, None)
            return z
        y = self._act_fn(z)
        self._cache = (win, z, y)
        return y

    def backward(self, dy):
        win, z, y = self._cache
        if self._act_fn is not None:
            dy = dy * self._act_grad(z, y)
        k = self.kernel_size
        # dW[k, ci, co] = sum_{n, l} win[n, l, ci, k] * dy[n, l, co]
        dw = np.tensordot(win, dy, axes=([0, 1], [0, 1]))  # (ci, k, co)
        self.set_grad("kernel", dw.transpose(1, 0, 2))
        if self.use_bias:
            self.set_grad("bias", dy.sum(axis=(0, 1)))
        # Full correlation of dy with the tap-reversed kernel gives dx.
        if k > 1:
            n, steps, co = dy.shape
            # cached pad buffer: margins are zero-initialized once and
            # never written, so reuse skips both the alloc and the memset
            dyp = self.scratch("dyp", (n, steps + 2 * (k - 1), co), dy.dtype, zero=False)
            dyp[:, k - 1 : k - 1 + steps, :] = dy
        else:
            dyp = dy
        win_dy = sliding_window_view(dyp, k, axis=1)  # (N, L_pad, co, k)
        w_flip = self.params["kernel"][::-1]  # reverse taps
        dxp = np.tensordot(win_dy, w_flip, axes=([3, 2], [0, 2]))
        if self._pad_l or self._pad_r:
            end = dxp.shape[1] - self._pad_r
            dxp = dxp[:, self._pad_l : end, :]
        return dxp


class MaxPooling1D(Layer):
    """Non-overlapping max pooling (``strides == pool_size``).

    Trailing steps that do not fill a window are dropped, matching
    Keras's 'valid' pooling.
    """

    def __init__(self, pool_size: int = 2, name: Optional[str] = None):
        super().__init__(name=name)
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise ValueError(
                f"MaxPooling1D expects (steps, channels) input, got {input_shape}"
            )
        steps, channels = input_shape
        out_steps = steps // self.pool_size
        if out_steps == 0:
            raise ValueError(
                f"input length {steps} shorter than pool size {self.pool_size}"
            )
        self.input_shape = tuple(input_shape)
        self.output_shape = (out_steps, channels)
        self.built = True

    def forward(self, x, training=False):
        self._require_built()
        p = self.pool_size
        n, steps, c = x.shape
        out_steps = steps // p
        xw = x[:, : out_steps * p, :].reshape(n, out_steps, p, c)
        idx = np.argmax(xw, axis=2)  # (n, out_steps, c)
        self._cache = (x.shape, idx)
        return np.max(xw, axis=2)

    def backward(self, dy):
        in_shape, idx = self._cache
        p = self.pool_size
        n, out_steps, c = dy.shape
        # scatter target must be re-zeroed (argmax positions move per batch)
        dxw = self.scratch("dxw", (n, out_steps, p, c), dy.dtype)
        ni, li, ci = np.ogrid[:n, :out_steps, :c]
        dxw[ni, li, idx, ci] = dy
        # the pooled region is fully overwritten; the dropped tail stays
        # zero from allocation, so no re-zero is needed
        dx = self.scratch("dx", in_shape, dy.dtype, zero=False)
        dx[:, : out_steps * p, :] = dxw.reshape(n, out_steps * p, c)
        return dx


class LocallyConnected1D(Layer):
    """Conv1D with *unshared* weights per output position.

    The paper describes P1B3 as "an MLP network with convolution-like
    layers"; locally connected layers are the Keras construct CANDLE's
    P1B3 offers for that. Kernel shape:
    ``(out_steps, kernel_size * in_channels, filters)``.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        activation: Optional[str] = None,
        kernel_initializer: str = "glorot_uniform",
        use_bias: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if filters <= 0 or kernel_size <= 0:
            raise ValueError("filters and kernel_size must be positive")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.activation_name = activation
        self._act_fn, self._act_grad = (
            _act.get(activation) if activation else (None, None)
        )
        self.kernel_initializer = kernel_initializer
        self.use_bias = bool(use_bias)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise ValueError(
                f"LocallyConnected1D expects (steps, channels), got {input_shape}"
            )
        steps, channels = input_shape
        out_steps = steps - self.kernel_size + 1
        if out_steps <= 0:
            raise ValueError(
                f"input length {steps} shorter than kernel {self.kernel_size}"
            )
        init = _init.get(self.kernel_initializer)
        self.add_param(
            "kernel",
            init((out_steps, self.kernel_size * channels, self.filters), rng),
        )
        if self.use_bias:
            self.add_param("bias", np.zeros((out_steps, self.filters)))
        self.input_shape = tuple(input_shape)
        self.output_shape = (out_steps, self.filters)
        self.built = True

    def forward(self, x, training=False):
        self._require_built()
        k = self.kernel_size
        n, steps, c = x.shape
        out_steps = self.output_shape[0]
        # (N, out_steps, c, k) -> flatten the (k, c) receptive field in
        # (tap, channel) order to match the kernel layout below.
        win = sliding_window_view(x, k, axis=1)
        win_flat = win.transpose(0, 1, 3, 2).reshape(n, out_steps, k * c)
        z = np.einsum("nlf,lfo->nlo", win_flat, self.params["kernel"])
        if self.use_bias:
            z += self.params["bias"]  # z is fresh from the einsum
        if self._act_fn is None:
            self._cache = (x.shape, win_flat, None, None)
            return z
        y = self._act_fn(z)
        self._cache = (x.shape, win_flat, z, y)
        return y

    def backward(self, dy):
        in_shape, win_flat, z, y = self._cache
        if self._act_fn is not None:
            dy = dy * self._act_grad(z, y)
        kdst = self.grads.get("kernel") if self._arena_grads else None
        if kdst is not None and kdst.dtype == np.result_type(win_flat, dy):
            np.einsum("nlf,nlo->lfo", win_flat, dy, out=kdst)
        else:
            self.set_grad("kernel", np.einsum("nlf,nlo->lfo", win_flat, dy))
        if self.use_bias:
            self.set_grad("bias", dy.sum(axis=0))
        dwin = np.einsum("nlo,lfo->nlf", dy, self.params["kernel"])
        n, steps, c = in_shape
        k = self.kernel_size
        out_steps = dy.shape[1]
        dwin = dwin.reshape(n, out_steps, k, c)
        # overlap-add accumulates, so the buffer must start from zero
        dx = self.scratch("dx", in_shape, dy.dtype)
        for tap in range(k):  # overlap-add of the k shifted slices
            dx[:, tap : tap + out_steps, :] += dwin[:, :, tap, :]
        return dx


class AveragePooling1D(Layer):
    """Non-overlapping average pooling (``strides == pool_size``)."""

    def __init__(self, pool_size: int = 2, name: Optional[str] = None):
        super().__init__(name=name)
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self._in_shape: tuple | None = None

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise ValueError(
                f"AveragePooling1D expects (steps, channels), got {input_shape}"
            )
        steps, channels = input_shape
        out_steps = steps // self.pool_size
        if out_steps == 0:
            raise ValueError(
                f"input length {steps} shorter than pool size {self.pool_size}"
            )
        self.input_shape = tuple(input_shape)
        self.output_shape = (out_steps, channels)
        self.built = True

    def forward(self, x, training=False):
        self._require_built()
        p = self.pool_size
        n, steps, c = x.shape
        out_steps = steps // p
        self._in_shape = x.shape
        return x[:, : out_steps * p, :].reshape(n, out_steps, p, c).mean(axis=2)

    def backward(self, dy):
        p = self.pool_size
        n, out_steps, c = dy.shape
        # pooled region fully overwritten below; tail stays zero
        dx = self.scratch("dx", self._in_shape, dy.dtype, zero=False)
        pooled = dx[:, : out_steps * p, :]
        try:
            # in-place shape change: guaranteed view (raises rather than copy)
            pooled.shape = (n, out_steps, p, c)
        except AttributeError:
            dx[:, : out_steps * p, :] = np.repeat(dy / p, p, axis=1)
            return dx
        pooled[...] = (dy / p)[:, :, None, :]
        return dx


class GlobalMaxPooling1D(Layer):
    """Max over the whole steps axis: (N, L, C) -> (N, C)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise ValueError(
                f"GlobalMaxPooling1D expects (steps, channels), got {input_shape}"
            )
        self.input_shape = tuple(input_shape)
        self.output_shape = (input_shape[1],)
        self.built = True

    def forward(self, x, training=False):
        self._require_built()
        idx = np.argmax(x, axis=1)  # (N, C)
        self._cache = (x.shape, idx)
        return np.max(x, axis=1)

    def backward(self, dy):
        shape, idx = self._cache
        # scatter target: re-zero on reuse (argmax positions move)
        dx = self.scratch("dx", shape, dy.dtype)
        n, _, c = shape
        ni, ci = np.ogrid[:n, :c]
        dx[ni, idx, ci] = dy
        return dx
