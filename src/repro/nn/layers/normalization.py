"""Batch normalization (1-D / dense inputs).

Several CANDLE architectures offer batch normalization between dense
layers; implemented here with the standard training/inference split:
batch statistics + running-moment updates during training, running
moments at inference. The backward pass is the full batch-norm gradient
(including the dependence of the batch statistics on every sample).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers.base import Layer

__all__ = ["BatchNormalization"]


class BatchNormalization(Layer):
    """Normalize over the batch axis; learn per-feature gamma/beta.

    Works on flat ``(N, F)`` inputs and on sequence ``(N, L, C)``
    inputs (normalizing per channel over batch and length, Keras-style).
    """

    def __init__(self, momentum: float = 0.99, epsilon: float = 1e-3, name: Optional[str] = None):
        super().__init__(name=name)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self._cache: tuple | None = None

    def build(self, input_shape, rng):
        features = input_shape[-1]
        self.add_param("gamma", np.ones(features))
        self.add_param("beta", np.zeros(features))
        # running moments are state, not trainable parameters; stored at
        # the layer dtype so a float32 model stays float32 at inference
        self.running_mean = np.zeros(features, dtype=self.dtype)
        self.running_var = np.ones(features, dtype=self.dtype)
        self.input_shape = tuple(input_shape)
        self.output_shape = tuple(input_shape)
        self.built = True

    def _axes(self, x: np.ndarray) -> tuple:
        return tuple(range(x.ndim - 1))  # all but the feature axis

    def forward(self, x, training=False):
        self._require_built()
        axes = self._axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1 - m) * mean
            self.running_var = m * self.running_var + (1 - m) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std, training, x.shape)
        return self.params["gamma"] * x_hat + self.params["beta"]

    def backward(self, dy):
        x_hat, inv_std, training, shape = self._cache
        axes = self._axes(dy)
        self.set_grad("gamma", (dy * x_hat).sum(axis=axes))
        self.set_grad("beta", dy.sum(axis=axes))
        g = self.params["gamma"]
        if not training:
            return dy * g * inv_std
        # full batch-norm gradient: statistics depend on every sample
        n = float(np.prod([shape[a] for a in axes]))
        dxhat = dy * g
        return (
            inv_std
            / n
            * (
                n * dxhat
                - dxhat.sum(axis=axes)
                - x_hat * (dxhat * x_hat).sum(axis=axes)
            )
        )
