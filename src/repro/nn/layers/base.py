"""Layer base class.

A layer owns name-keyed parameter and gradient dicts. The contract:

- ``build(input_shape, rng)`` is called once with the per-example shape
  (no batch dim); it must set ``self.output_shape`` and may create
  parameters via :meth:`add_param`.
- ``forward(x, training)`` returns the activations and caches whatever
  the backward pass needs.
- ``backward(dy)`` consumes the upstream gradient, fills ``self.grads``
  for each parameter, and returns the gradient w.r.t. the input.

Shapes follow Keras convention: batch first, channels last.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

__all__ = ["Layer"]

_layer_counter = itertools.count()


class Layer:
    """Base class for all layers."""

    def __init__(self, name: Optional[str] = None):
        #: auto-named layers are renamed deterministically (by position)
        #: when the model builds, so SPMD ranks agree on parameter names
        self.auto_named = name is None
        self.name = name or f"{type(self).__name__.lower()}_{next(_layer_counter)}"
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        #: parameter storage dtype; Sequential.build overrides per-model
        self.dtype: np.dtype = np.dtype(np.float64)
        #: True once ParameterArena.adopt installed gradient views —
        #: set_grad then writes through instead of rebinding the dict
        self._arena_grads = False
        self._scratch: dict[str, np.ndarray] = {}
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.output_shape: Optional[Tuple[int, ...]] = None
        self.built = False

    # -- lifecycle -------------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Create parameters for ``input_shape`` (per-example, no batch)."""
        self.input_shape = tuple(input_shape)
        self.output_shape = tuple(input_shape)
        self.built = True

    def add_param(self, key: str, value: np.ndarray) -> np.ndarray:
        """Register a trainable parameter array under ``key``."""
        arr = np.asarray(value, dtype=self.dtype)
        self.params[key] = arr
        return arr

    def set_grad(self, key: str, value: np.ndarray) -> None:
        """Store a gradient, writing through to the arena view if installed."""
        if self._arena_grads:
            dst = self.grads.get(key)
            if dst is not None and dst.shape == np.shape(value):
                np.copyto(dst, value)
                return
        self.grads[key] = value

    def scratch(self, key: str, shape, dtype, zero: bool = True) -> np.ndarray:
        """A cached per-layer work buffer keyed by ``key``.

        Reallocated (zero-filled) when the requested shape or dtype
        changes — e.g. the short final batch of an epoch; otherwise the
        cached buffer is reused, re-zeroed only when ``zero`` is True.
        Callers that overwrite every element they read pass
        ``zero=False`` and skip the memset.
        """
        shape = tuple(shape)
        buf = self._scratch.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.zeros(shape, dtype=dtype)
            self._scratch[key] = buf
        elif zero:
            buf.fill(0.0)
        return buf

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- bookkeeping -------------------------------------------------------
    def param_count(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def regularization_penalty(self) -> float:
        """Extra loss contributed by this layer's regularizers (if any)."""
        return 0.0

    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError(
                f"layer {self.name!r} used before build(); add it to a model first"
            )

    def __repr__(self):
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"in={self.input_shape} out={self.output_shape}>"
        )
