"""The Sequential model: compile / fit / evaluate / predict.

This is the Keras surface the CANDLE benchmarks are written against
(Figure 2 of the paper: data loading → training + cross-validation →
prediction/evaluation; the middle phase is ``fit``).

Distributed-training hooks, mirroring the paper's Horovod additions:

- the optimizer is pluggable, so ``hvd.DistributedOptimizer`` can wrap
  it (gradient allreduce happens inside ``optimizer.apply_gradients``);
- callbacks run at epoch/batch boundaries, so
  ``BroadcastGlobalVariablesCallback`` can sync initial weights;
- ``set_weights`` copies *in place*, so a broadcast does not invalidate
  optimizer state or cross-rank array identity.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.nn import losses as _losses
from repro.nn import metrics as _metrics
from repro.nn import optimizers as _optimizers
from repro.nn.arena import ParameterArena
from repro.nn.callbacks import Callback, CallbackList, History
from repro.nn.layers.base import Layer
from repro.nn.layers.core import Activation, Dense

__all__ = ["Sequential"]


class Sequential:
    """A linear stack of layers."""

    def __init__(self, layers: Optional[Iterable[Layer]] = None, name: str = "sequential"):
        self.name = name
        self.layers: list[Layer] = []
        self.optimizer: _optimizers.Optimizer | None = None
        self.loss: _losses.Loss | None = None
        self.metrics: list = []
        self.metric_names: list[str] = []
        self.built = False
        self.stop_training = False
        self.dtype = np.dtype(np.float64)
        self._arena: ParameterArena | None = None
        self._shuffle_rng = np.random.default_rng(0)
        #: layer-completion callbacks fired during backward (overlap)
        self._backward_hooks: list = []
        #: the installed repro.overlap scheduler, if any
        self._overlap = None
        #: OverlapStats from the most recent overlapped fit (else None)
        self.last_overlap_stats = None
        #: PrefetchStats from the most recent prefetched fit (else None)
        self.last_prefetch_stats = None
        for layer in layers or []:
            self.add(layer)

    # -- construction ------------------------------------------------------
    def add(self, layer: Layer) -> None:
        """Append a layer; building is deferred until :meth:`build`."""
        if self.built:
            raise RuntimeError("cannot add layers after the model is built")
        self.layers.append(layer)

    def build(
        self,
        input_shape: Sequence[int],
        seed: int = 0,
        *,
        train=None,
        arena=None,
        dtype=None,
    ) -> None:
        """Build every layer for a per-example ``input_shape``.

        ``seed`` drives weight init; SPMD ranks pass different seeds and
        rely on the Horovod broadcast to reconcile, as the paper does.

        ``train`` is a :class:`repro.train.TrainOptions`; its ``arena``
        field (default True) moves all parameters and gradients into a
        :class:`~repro.nn.arena.ParameterArena` after building —
        contiguous slabs that enable fused optimizer updates and
        zero-copy gradient allreduce. Updates stay bit-identical to the
        per-parameter path; ``TrainOptions(arena=False)`` keeps plain
        per-layer arrays. Its ``dtype`` sets the parameter/compute
        precision (default float64; NT3-scale models train ~2× faster
        in float32). The bare ``arena=``/``dtype=`` keywords are
        deprecated shims that dispatch through a TrainOptions.
        """
        from repro.train import UNSET, resolve_train

        train = resolve_train(
            train,
            caller="Sequential.build",
            arena=UNSET if arena is None else arena,
            dtype=UNSET if dtype is None else dtype,
        )
        if self.built:
            raise RuntimeError("model already built")
        if not self.layers:
            raise ValueError("cannot build an empty model")
        if train.dtype is not None:
            self.dtype = train.dtype
            if self.dtype.kind != "f":
                raise ValueError(f"model dtype must be floating, got {self.dtype}")
        rng = np.random.default_rng(seed)
        self._shuffle_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        shape = tuple(int(s) for s in input_shape)
        for i, layer in enumerate(self.layers):
            if layer.auto_named:
                # positional names: identical across SPMD ranks regardless
                # of thread interleaving, so broadcast/allreduce align
                layer.name = f"{type(layer).__name__.lower()}_{i}"
            layer.dtype = self.dtype
            layer.build(shape, rng)
            shape = layer.output_shape
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate layer names: {names}")
        self.built = True
        if train.arena and any(layer.params for layer in self.layers):
            self._arena = ParameterArena.adopt(self, dtype=self.dtype)

    @property
    def arena(self) -> ParameterArena | None:
        """The parameter arena, or ``None`` if built with ``arena=False``."""
        return self._arena

    def detach_arena(self) -> None:
        """Give every layer back its own (copied) parameter arrays.

        After this, parameters are ordinary per-layer arrays and
        training uses the per-parameter reference path. Used by code
        that wants to hand layers to another process/thread without
        sharing slab storage.
        """
        if self._arena is None:
            return
        for layer in self.layers:
            for key in list(layer.params):
                layer.params[key] = layer.params[key].copy()
                layer.grads.pop(key, None)
            layer._arena_grads = False
        self._arena = None

    def compile(self, optimizer="sgd", loss="mse", metrics: Sequence = (), lr: float | None = None) -> None:
        """Attach optimizer, loss, and metrics (Keras signature subset)."""
        self.optimizer = _optimizers.get(optimizer, lr=lr)
        self.loss = _losses.get(loss)
        self.metrics = [_metrics.get(m) for m in metrics]
        self.metric_names = [_metrics.metric_name(m) for m in metrics]

    # -- parameter access ----------------------------------------------------
    def named_parameters(self) -> dict[str, np.ndarray]:
        """Flat dict of ``layer_name/param_key`` → array (live references)."""
        self._require_built()
        out: dict[str, np.ndarray] = {}
        for layer in self.layers:
            for key, arr in layer.params.items():
                out[f"{layer.name}/{key}"] = arr
        return out

    def named_gradients(self) -> dict[str, np.ndarray]:
        """Flat dict of the most recent backward pass's gradients."""
        out: dict[str, np.ndarray] = {}
        for layer in self.layers:
            for key, arr in layer.grads.items():
                out[f"{layer.name}/{key}"] = arr
        return out

    def get_weights(self) -> list[np.ndarray]:
        """Copies of all weights in layer order (Keras convention)."""
        return [arr.copy() for arr in self.named_parameters().values()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Copy ``weights`` into the model's arrays *in place*."""
        params = list(self.named_parameters().values())
        if len(weights) != len(params):
            raise ValueError(
                f"expected {len(params)} weight arrays, got {len(weights)}"
            )
        for dst, src in zip(params, weights):
            src = np.asarray(src)
            if dst.shape != src.shape:
                raise ValueError(f"shape mismatch: {dst.shape} vs {src.shape}")
            np.copyto(dst, src)

    def count_params(self) -> int:
        """Total trainable scalar count."""
        self._require_built()
        return sum(layer.param_count() for layer in self.layers)

    # -- forward / backward ---------------------------------------------------
    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Forward pass in inference mode, batched to bound memory."""
        self._require_built()
        if len(x) == 0:
            raise ValueError("predict called with empty input")
        outs = [
            self._forward(x[i : i + batch_size], training=False)
            for i in range(0, len(x), batch_size)
        ]
        return np.concatenate(outs, axis=0)

    def _forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        h = x
        for layer in self.layers:
            h = layer.forward(h, training=training)
        return h

    def _backward(self, y_true: np.ndarray, y_pred: np.ndarray) -> None:
        """Backprop the loss gradient through the stack.

        Fuses softmax with categorical cross-entropy when the last layer
        is ``Activation('softmax')`` or ``Dense(activation='softmax')``.
        """
        last = self.layers[-1]
        fused = isinstance(self.loss, _losses.CategoricalCrossentropy) and (
            (isinstance(last, Activation) and last.is_softmax)
            or (isinstance(last, Dense) and last.activation_name == "softmax")
        )
        if fused:
            grad = self.loss.fused_softmax_grad(y_true, y_pred)
            if isinstance(last, Activation):
                rest = self.layers[:-1]
            else:
                grad = last.backward_from_logits(grad)
                self._notify_backward(last)
                rest = self.layers[:-1]
        else:
            grad = self.loss.grad(y_true, y_pred)
            rest = self.layers
        for layer in reversed(rest):
            grad = layer.backward(grad)
            self._notify_backward(layer)

    def _notify_backward(self, layer: Layer) -> None:
        """Fire layer-completion hooks: this layer's gradients are final."""
        for hook in self._backward_hooks:
            hook(layer)

    def _regularization_penalty(self) -> float:
        return sum(layer.regularization_penalty() for layer in self.layers)

    # -- training ------------------------------------------------------------
    def train_on_batch(self, x: np.ndarray, y: np.ndarray) -> dict[str, float]:
        """One forward/backward/update step; returns batch logs."""
        self._require_compiled()
        y_pred = self._forward(x, training=True)
        loss_val = self.loss.value(y, y_pred) + self._regularization_penalty()
        if self._overlap is not None:
            self._overlap.begin_step()
        self._backward(y, y_pred)
        if self._arena is not None:
            self.optimizer.apply_arena(self._arena)
        else:
            self.optimizer.apply_gradients(
                self.named_parameters(), self.named_gradients()
            )
        logs = {"loss": float(loss_val)}
        for name, fn in zip(self.metric_names, self.metrics):
            logs[name] = fn(y, y_pred)
        return logs

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray | None = None,
        batch_size: int = 32,
        epochs: int = 1,
        shuffle: bool = True,
        validation_data: Optional[tuple] = None,
        callbacks: Optional[Sequence[Callback]] = None,
        verbose: int = 0,
        initial_epoch: int = 0,
        train=None,
    ) -> History:
        """Train for ``epochs`` passes over ``(x, y)``.

        Per-epoch logs hold the running mean of batch losses/metrics plus
        ``val_*`` entries when ``validation_data`` is given. Returns the
        ``History`` callback, as Keras does.

        ``x`` may instead be an
        :class:`repro.ingest.prefetch.EpochPrefetcher` (with ``y=None``):
        each epoch's already-shuffled ``(x, y)`` pair is pulled from the
        prefetcher's background loader while the previous epoch
        computes, the prefetcher's epoch count wins over ``epochs``, and
        the prefetcher is closed when the fit ends — including on a
        mid-epoch exception, so no loader thread outlives the fit. The
        per-run :class:`~repro.ingest.prefetch.PrefetchStats` land on
        ``self.last_prefetch_stats``.

        ``train`` is an optional :class:`repro.train.TrainOptions`; with
        ``overlap=True`` on an arena-built model under a multi-rank
        distributed optimizer, an :class:`repro.overlap.OverlapScheduler`
        is installed for the duration of the fit, overlapping each
        step's gradient allreduce with its backward pass.
        """
        from repro.ingest.prefetch import EpochPrefetcher

        self._require_compiled()
        prefetcher = x if isinstance(x, EpochPrefetcher) else None
        if prefetcher is not None:
            if y is not None:
                raise ValueError("y must be None when x is an EpochPrefetcher")
            if prefetcher.epochs_remaining <= 0:
                raise ValueError("prefetcher has no epochs left to train on")
        else:
            if y is None:
                raise ValueError("y is required unless x is an EpochPrefetcher")
            if len(x) != len(y):
                raise ValueError(
                    f"x and y disagree on length: {len(x)} vs {len(y)}"
                )
            if len(x) == 0:
                raise ValueError("fit called with empty dataset")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {epochs}")

        history = History()
        cb_list = CallbackList(list(callbacks or []) + [history])
        cb_list.set_model(self)
        self.stop_training = False

        overlap = None
        if train is not None and train.overlap and self._overlap is None:
            from repro.overlap import OverlapScheduler

            overlap = OverlapScheduler.maybe_install(
                self, self.optimizer, train=train
            )
        try:
            if prefetcher is not None:
                return self._fit_prefetched(
                    prefetcher, batch_size, validation_data,
                    cb_list, history, verbose, initial_epoch,
                )
            return self._fit_loop(
                x, y, batch_size, epochs, shuffle, validation_data,
                cb_list, history, verbose, initial_epoch,
            )
        finally:
            if overlap is not None:
                overlap.close()
                self.last_overlap_stats = overlap.stats

    def _epoch_pass(self, x, y, order, batch_size, cb_list) -> dict[str, float]:
        """One pass over ``(x, y)`` in ``order``; mean of batch logs."""
        sums: dict[str, float] = {}
        batches = 0
        for start in range(0, len(x), batch_size):
            idx = order[start : start + batch_size]
            cb_list.on_batch_begin(batches, {"size": len(idx)})
            logs = self.train_on_batch(x[idx], y[idx])
            cb_list.on_batch_end(batches, logs)
            for key, value in logs.items():
                sums[key] = sums.get(key, 0.0) + value
            batches += 1
        return {key: value / batches for key, value in sums.items()}

    def _close_epoch(
        self, epoch, epoch_logs, t0, batch_size, validation_data,
        cb_list, verbose, last_epoch,
    ) -> None:
        if validation_data is not None:
            vx, vy = validation_data
            val = self.evaluate(vx, vy, batch_size=batch_size)
            epoch_logs.update({f"val_{key}": value for key, value in val.items()})
        epoch_logs["epoch_time"] = time.perf_counter() - t0
        cb_list.on_epoch_end(epoch, epoch_logs)
        if verbose:
            stats = " ".join(f"{key}={value:.4f}" for key, value in epoch_logs.items())
            print(f"epoch {epoch + 1}/{last_epoch}: {stats}")

    def _fit_loop(
        self, x, y, batch_size, epochs, shuffle, validation_data,
        cb_list, history, verbose, initial_epoch,
    ) -> History:
        n = len(x)
        cb_list.on_train_begin({})
        for epoch in range(initial_epoch, initial_epoch + epochs):
            t0 = time.perf_counter()
            cb_list.on_epoch_begin(epoch, {})
            order = self._shuffle_rng.permutation(n) if shuffle else np.arange(n)
            epoch_logs = self._epoch_pass(x, y, order, batch_size, cb_list)
            self._close_epoch(
                epoch, epoch_logs, t0, batch_size, validation_data,
                cb_list, verbose, initial_epoch + epochs,
            )
            if self.stop_training:
                break
        cb_list.on_train_end({})
        return history

    def _fit_prefetched(
        self, prefetcher, batch_size, validation_data,
        cb_list, history, verbose, initial_epoch,
    ) -> History:
        """Epochs fed by an EpochPrefetcher: already-shuffled pairs
        arrive from the background loader; no extra shuffle here."""
        epochs = prefetcher.epochs_remaining
        cb_list.on_train_begin({})
        try:
            for epoch in range(initial_epoch, initial_epoch + epochs):
                t0 = time.perf_counter()
                cb_list.on_epoch_begin(epoch, {})
                ex, ey = prefetcher.next_epoch()
                order = np.arange(len(ex))
                epoch_logs = self._epoch_pass(ex, ey, order, batch_size, cb_list)
                self._close_epoch(
                    epoch, epoch_logs, t0, batch_size, validation_data,
                    cb_list, verbose, initial_epoch + epochs,
                )
                if self.stop_training:
                    break
        finally:
            prefetcher.close()
            self.last_prefetch_stats = prefetcher.stats
        cb_list.on_train_end({})
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> dict[str, float]:
        """Compute loss and metrics on ``(x, y)`` in inference mode."""
        self._require_compiled()
        y_pred = self.predict(x, batch_size=batch_size)
        out = {"loss": self.loss.value(y, y_pred) + self._regularization_penalty()}
        for name, fn in zip(self.metric_names, self.metrics):
            out[name] = fn(y, y_pred)
        return out

    # -- introspection ---------------------------------------------------------
    def summary(self) -> str:
        """Keras-style text summary of the layer stack."""
        self._require_built()
        lines = [f"Model: {self.name}", "-" * 58]
        lines.append(f"{'Layer':<28}{'Output shape':<18}{'Params':>10}")
        for layer in self.layers:
            lines.append(
                f"{layer.name:<28}{str(layer.output_shape):<18}{layer.param_count():>10}"
            )
        lines.append("-" * 58)
        lines.append(f"Total params: {self.count_params()}")
        return "\n".join(lines)

    # -- guards ------------------------------------------------------------------
    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError("model not built; call build(input_shape) first")

    def _require_compiled(self) -> None:
        self._require_built()
        if self.optimizer is None or self.loss is None:
            raise RuntimeError("model not compiled; call compile() first")
