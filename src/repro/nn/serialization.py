"""Checkpoint/restart: model + optimizer state serialization.

The paper's future work (§7): "We will add checkpoint/restart features
to the Horovod benchmarks for fault tolerance." This module provides
it: a checkpoint is an ``.npz`` holding every named parameter, every
optimizer state slot, and the optimizer's step counter/LR — enough to
resume training *exactly* (bit-for-bit with a fixed shuffle order).

The Horovod-side callback that writes checkpoints from rank 0 and
restores+broadcasts on restart lives in :mod:`repro.hvd.callbacks`.
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointError"]

_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Checkpoint file is missing, corrupt, or mismatched."""


def _optimizer_of(model):
    opt = model.optimizer
    # DistributedOptimizer proxies state to its base optimizer
    return getattr(opt, "base", opt)


def save_checkpoint(model, path, epoch: Optional[int] = None) -> None:
    """Write model weights + optimizer state + metadata to ``path``.

    The model must be compiled (the optimizer is part of the state).
    """
    model._require_compiled()
    opt = _optimizer_of(model)
    arrays: dict[str, np.ndarray] = {}
    for name, param in model.named_parameters().items():
        arrays[f"param::{name}"] = param
    for pname, slots in opt._state.items():
        for slot, arr in slots.items():
            arrays[f"state::{pname}::{slot}"] = arr
    meta = {
        "version": _FORMAT_VERSION,
        "epoch": epoch,
        "optimizer": type(opt).__name__,
        "lr": opt.lr,
        "iterations": opt.iterations,
        "param_names": sorted(model.named_parameters()),
    }
    arrays["meta::json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    ).copy()
    np.savez(path, **arrays)


def load_checkpoint(model, path) -> dict:
    """Restore weights + optimizer state in place; returns the metadata.

    Validates that the checkpoint's parameter set matches the model —
    resuming into a different architecture fails loudly.
    """
    model._require_compiled()
    try:
        with np.load(path) as data:
            arrays = {key: data[key] for key in data.files}
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc

    meta_raw = arrays.pop("meta::json", None)
    if meta_raw is None:
        raise CheckpointError(f"{path!r} is not a repro checkpoint (no metadata)")
    meta = json.loads(bytes(meta_raw.tobytes()).decode())
    if meta.get("version") != _FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint version {meta.get('version')} != {_FORMAT_VERSION}"
        )

    params = model.named_parameters()
    saved_names = {k[len("param::"):] for k in arrays if k.startswith("param::")}
    if saved_names != set(params):
        missing = sorted(set(params) - saved_names)
        extra = sorted(saved_names - set(params))
        raise CheckpointError(
            f"parameter mismatch: missing {missing}, unexpected {extra}"
        )
    for name, param in params.items():
        saved = arrays[f"param::{name}"]
        if saved.shape != param.shape:
            raise CheckpointError(
                f"shape mismatch for {name!r}: {saved.shape} vs {param.shape}"
            )
        np.copyto(param, saved)

    opt = _optimizer_of(model)
    opt._state.clear()
    for key, arr in arrays.items():
        if key.startswith("state::"):
            _, pname, slot = key.split("::", 2)
            opt._state.setdefault(pname, {})[slot] = arr.copy()
    opt.lr = float(meta["lr"])
    opt.iterations = int(meta["iterations"])
    return meta
