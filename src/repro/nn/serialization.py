"""Checkpoint/restart: model + optimizer state serialization.

The paper's future work (§7): "We will add checkpoint/restart features
to the Horovod benchmarks for fault tolerance." This module provides
it: a checkpoint is an ``.npz`` holding every named parameter, every
optimizer state slot, and the optimizer's step counter/LR — enough to
resume training *exactly* (bit-for-bit with a fixed shuffle order).

The Horovod-side callback that writes checkpoints from rank 0 and
restores+broadcasts on restart lives in :mod:`repro.hvd.callbacks`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

import numpy as np

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "load_weights_dict",
    "checksum_file",
    "capture_rng_state",
    "restore_rng_state",
    "CheckpointError",
]

_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Checkpoint file is missing, corrupt, or mismatched."""


def checksum_file(path) -> str:
    """SHA-256 of a file's bytes (the checkpoint integrity fingerprint)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _npz_path(path) -> str:
    """The on-disk name ``np.savez`` would use (appends ``.npz``)."""
    final = str(path)
    return final if final.endswith(".npz") else final + ".npz"


def _optimizer_of(model):
    opt = model.optimizer
    # DistributedOptimizer proxies state to its base optimizer
    return getattr(opt, "base", opt)


def capture_rng_state(model) -> dict:
    """Snapshot every RNG stream training consumes, JSON-serializably.

    Weights and optimizer slots are not the whole training state: the
    shuffle generator and each Dropout layer's mask generator advance
    every epoch, and a resume that resets them diverges from the
    uninterrupted run on the first stochastic draw. The returned dict
    (bit-generator states, plain ints) goes into the checkpoint's
    metadata; :func:`restore_rng_state` applies it after the weights.
    """
    state: dict = {"shuffle": model._shuffle_rng.bit_generator.state}
    layers = {}
    for i, layer in enumerate(getattr(model, "layers", [])):
        rng = getattr(layer, "_rng", None)
        if rng is not None:
            layers[f"layer{i}"] = rng.bit_generator.state
    state["layers"] = layers
    return state


def restore_rng_state(model, state: dict) -> None:
    """Re-seed the model's RNG streams from a :func:`capture_rng_state` dict.

    Layers are matched positionally, so the model must have the same
    architecture the snapshot was taken from (the same guarantee
    checkpoint loading already enforces for parameters).
    """
    shuffle = state.get("shuffle")
    if shuffle is not None:
        model._shuffle_rng.bit_generator.state = shuffle
    layer_states = state.get("layers", {})
    for i, layer in enumerate(getattr(model, "layers", [])):
        rng = getattr(layer, "_rng", None)
        key = f"layer{i}"
        if rng is not None and key in layer_states:
            rng.bit_generator.state = layer_states[key]


def save_checkpoint(
    model, path, epoch: Optional[int] = None, extra_state: Optional[dict] = None
) -> str:
    """Write model weights + optimizer state + metadata to ``path``.

    The model must be compiled (the optimizer is part of the state).

    The write is *atomic*: the archive is assembled in a temporary file
    in the same directory and moved into place with ``os.replace``, so
    a crash mid-write (a killed rank, a full disk, an injected fault)
    can never leave a truncated checkpoint under the final name — the
    previous checkpoint, if any, survives intact. Returns the SHA-256
    hex digest of the written file so callers (e.g.
    :class:`repro.resilience.CheckpointManager`) can verify integrity
    on load.
    """
    model._require_compiled()
    opt = _optimizer_of(model)
    arrays: dict[str, np.ndarray] = {}
    for name, param in model.named_parameters().items():
        arrays[f"param::{name}"] = param
    for pname, slots in opt._state.items():
        for slot, arr in slots.items():
            arrays[f"state::{pname}::{slot}"] = arr
    meta = {
        "version": _FORMAT_VERSION,
        "epoch": epoch,
        "optimizer": type(opt).__name__,
        "lr": opt.lr,
        "iterations": opt.iterations,
        "param_names": sorted(model.named_parameters()),
        # caller-provided JSON state (e.g. per-rank RNG snapshots)
        "extra": extra_state,
    }
    arrays["meta::json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    ).copy()

    final = _npz_path(path)
    directory = os.path.dirname(final) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(final) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return checksum_file(final)


def _read_arrays(path, expected_sha256: Optional[str]) -> tuple[dict, dict]:
    """Checksum, parse, and meta-validate a checkpoint; ``(arrays, meta)``."""
    if expected_sha256 is not None:
        try:
            actual = checksum_file(path)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        if actual != expected_sha256:
            raise CheckpointError(
                f"checksum mismatch for {path!r}: "
                f"expected {expected_sha256[:12]}…, got {actual[:12]}…"
            )
    try:
        with np.load(path) as data:
            arrays = {key: data[key] for key in data.files}
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc

    meta_raw = arrays.pop("meta::json", None)
    if meta_raw is None:
        raise CheckpointError(f"{path!r} is not a repro checkpoint (no metadata)")
    meta = json.loads(bytes(meta_raw.tobytes()).decode())
    if meta.get("version") != _FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint version {meta.get('version')} != {_FORMAT_VERSION}"
        )
    return arrays, meta


def load_weights_dict(path, expected_sha256: Optional[str] = None) -> tuple[dict, dict]:
    """Read a checkpoint's parameters without touching any model.

    Returns ``(weights, meta)`` where ``weights`` maps parameter name to
    array. This is the model-free half of :func:`load_checkpoint`: the
    serving hot-swap stages a checkpoint's weights into a fresh slab
    *next to* the live model and swaps atomically, so it must be able to
    read (and checksum-verify) a version without an instance to restore
    into. Optimizer state is ignored — inference has none.
    """
    arrays, meta = _read_arrays(path, expected_sha256)
    weights = {
        key[len("param::"):]: arrays[key]
        for key in arrays
        if key.startswith("param::")
    }
    return weights, meta


def load_checkpoint(model, path, expected_sha256: Optional[str] = None) -> dict:
    """Restore weights + optimizer state in place; returns the metadata.

    Validates that the checkpoint's parameter set matches the model —
    resuming into a different architecture fails loudly. When
    ``expected_sha256`` is given, the file's bytes are checksummed
    *before* parsing and a mismatch (corruption, truncation, a foreign
    file under the right name) raises :class:`CheckpointError` without
    touching the model.
    """
    model._require_compiled()
    arrays, meta = _read_arrays(path, expected_sha256)

    params = model.named_parameters()
    saved_names = {k[len("param::"):] for k in arrays if k.startswith("param::")}
    if saved_names != set(params):
        missing = sorted(set(params) - saved_names)
        extra = sorted(saved_names - set(params))
        raise CheckpointError(
            f"parameter mismatch: missing {missing}, unexpected {extra}"
        )
    for name, param in params.items():
        saved = arrays[f"param::{name}"]
        if saved.shape != param.shape:
            raise CheckpointError(
                f"shape mismatch for {name!r}: {saved.shape} vs {param.shape}"
            )
        np.copyto(param, saved)

    opt = _optimizer_of(model)
    # Restore state *in place* where the live slot array matches: fused
    # arena optimizers keep their state as views into flat slabs, and a
    # rebinding restore would silently sever that linkage.
    old_state = opt._state
    new_state: dict[str, dict[str, np.ndarray]] = {}
    for key, arr in arrays.items():
        if key.startswith("state::"):
            _, pname, slot = key.split("::", 2)
            cur = old_state.get(pname, {}).get(slot)
            if cur is not None and cur.shape == arr.shape:
                np.copyto(cur, arr)
            else:
                cur = arr.copy()
            new_state.setdefault(pname, {})[slot] = cur
    opt._state.clear()
    opt._state.update(new_state)
    opt.lr = float(meta["lr"])
    opt.iterations = int(meta["iterations"])
    return meta
