"""Weight initializers (Keras-compatible names).

All initializers take an explicit ``rng`` so every model build is
reproducible; the SPMD ranks in :mod:`repro.hvd` rely on this to start
from *different* weights and verify that the initial broadcast makes them
consistent, exactly as the paper's
``hvd.BroadcastGlobalVariablesHook(0)`` does.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "get",
    "glorot_uniform",
    "glorot_normal",
    "he_normal",
    "he_uniform",
    "lecun_uniform",
    "zeros",
    "ones",
]


def _fans(shape: Sequence[int]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) as Keras does.

    For a Dense kernel ``(in, out)`` these are the two dims; for a Conv1D
    kernel ``(width, in_ch, out_ch)`` the receptive field multiplies both.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[:-2]))
    return shape[-2] * receptive, shape[-1] * receptive


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform: U(-limit, limit), limit = sqrt(6/(fi+fo))."""
    fi, fo = _fans(shape)
    limit = np.sqrt(6.0 / (fi + fo))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot normal: N(0, sqrt(2/(fi+fo)))."""
    fi, fo = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / (fi + fo)), size=shape)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, sqrt(2/fan_in)); the right choice before relu."""
    fi, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fi), size=shape)


def he_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He uniform: U(-sqrt(6/fan_in), +sqrt(6/fan_in))."""
    fi, _ = _fans(shape)
    limit = np.sqrt(6.0 / fi)
    return rng.uniform(-limit, limit, size=shape)


def lecun_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """LeCun uniform: U(-sqrt(3/fan_in), +sqrt(3/fan_in))."""
    fi, _ = _fans(shape)
    limit = np.sqrt(3.0 / fi)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-zero initializer (the default for biases)."""
    return np.zeros(shape)


def ones(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-one initializer."""
    return np.ones(shape)


_INITIALIZERS: dict[str, Callable] = {
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "lecun_uniform": lecun_uniform,
    "zeros": zeros,
    "ones": ones,
}


def get(name: str) -> Callable:
    """Look up an initializer by Keras-style name."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; known: {sorted(_INITIALIZERS)}"
        ) from None
