"""Horovod timeline tracing → chrome://tracing (paper Figs 7b, 12, 19).

Runs NT3 functionally on 4 ranks with injected data-loading skew, dumps
the Chrome trace JSON, and prints the broadcast-overhead analysis that
Figs 7b/12 perform — then does the same for a simulated 384-GPU run
with and without the optimized loader.

Run:  python examples/timeline_tracing.py [output.json]
"""

import sys

from repro.analysis import broadcast_overhead_seconds, communication_summary, format_table
from repro.candle import get_benchmark
from repro.candle.nt3 import NT3_SPEC
from repro.cluster import IoSkewModel
from repro.core import run_parallel_benchmark, strong_scaling_plan
from repro.sim import ScaledRunSimulator


def functional_trace(out_path: str) -> None:
    bench = get_benchmark("nt3", scale=0.005, sample_scale=0.2)
    plan = strong_scaling_plan(bench.spec, 4, total_epochs=8)
    res = run_parallel_benchmark(
        bench, plan, seed=1, io_skew=IoSkewModel(cv=0.4), skew_scale_s=1.0
    )
    res.timeline.dump(out_path)
    print(f"wrote {len(res.timeline.events)} events to {out_path} "
          "(open in chrome://tracing)")
    summary = communication_summary(res.timeline)
    rows = [
        {"event": name, "total_s": round(summary.get(f"{name}_s", 0.0), 3),
         "count": int(summary.get(f"{name}_n", 0))}
        for name in ("negotiate_broadcast", "mpi_broadcast",
                     "negotiate_allreduce", "nccl_allreduce")
    ]
    print(format_table(rows, title="functional run, 4 ranks with injected skew"))


def simulated_384() -> None:
    sim = ScaledRunSimulator("summit")
    plan = strong_scaling_plan(NT3_SPEC, 384)
    rows = []
    for method in ("original", "chunked"):
        report = sim.run(NT3_SPEC, plan, method=method)
        rows.append(
            {"method": method,
             "broadcast_overhead_s": round(
                 broadcast_overhead_seconds(report.timeline), 2)}
        )
    print(format_table(rows, title="simulated 384-GPU broadcast overhead"))
    print("paper: 43.72 s original -> 4.65 s optimized (89.36% less)")


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "horovod_timeline.json"
    functional_trace(out)
    print()
    simulated_384()
