"""The paper's §5 data-loading fix, demonstrated twice.

1. *Functionally*: generate a real wide-row CSV (NT3-shaped) and a real
   narrow-row CSV (P1B3-shaped) and time every registered ingest method
   through the unified :class:`repro.ingest.DataSource` API — the
   original (``low_memory=True``), the paper's chunked fix, the
   Dask-like comparator, plus the new span-parallel and column-store
   cached engines. The wide file speeds up severalfold; the narrow one
   barely moves — Table 3's shape at laptop scale, produced by the real
   parsing engines.
2. *At paper scale*: print the calibrated model's Tables 3 and 4.

Run:  python examples/data_loading_optimization.py
"""

import os
import tempfile

import numpy as np

from repro.analysis import format_table
from repro.candle import get_benchmark
from repro.experiments import run_experiment
from repro.ingest import DataSource, LoaderConfig


def functional_demo() -> None:
    print("=== functional demo: real files, real parsers ===")
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for name, scale, sample_scale in (("nt3", 0.08, 0.03), ("p1b3", 0.05, 0.03)):
            bench = get_benchmark(name, scale=scale, sample_scale=sample_scale)
            train, _ = bench.write_files(tmp, rng=np.random.default_rng(0))
            source = DataSource(train)
            cache_dir = os.path.join(tmp, "cache")
            timing = {}
            for method in ("original", "chunked", "dask", "parallel", "cached"):
                config = LoaderConfig(method=method, cache_dir=cache_dir)
                timing[method] = source.load(config).seconds
            # a second cached load hits the binary column store: no parse
            timing["cached hit"] = source.load(
                LoaderConfig(method="cached", cache_dir=cache_dir)
            ).seconds
            rows.append(
                {
                    "file": f"{bench.spec.name} ({bench.features} cols x {bench.train_samples} rows)",
                    **{f"{m}_s": round(t, 3) for m, t in timing.items()},
                    "speedup": round(timing["original"] / timing["chunked"], 2),
                }
            )
    print(format_table(rows))
    print()


def paper_scale_tables() -> None:
    print("=== paper-scale model: Tables 3 and 4 ===")
    for eid in ("table3", "table4"):
        print(run_experiment(eid, fast=True).render())
        print()


if __name__ == "__main__":
    functional_demo()
    paper_scale_tables()
