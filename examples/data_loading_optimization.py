"""The paper's §5 data-loading fix, demonstrated twice.

1. *Functionally*: generate a real wide-row CSV (NT3-shaped) and a real
   narrow-row CSV (P1B3-shaped) and time the original
   (``low_memory=True``), optimized (chunked ``low_memory=False``), and
   Dask-like loaders from :mod:`repro.frame`. The wide file speeds up
   severalfold; the narrow one barely moves — Table 3's shape at laptop
   scale, produced by the real parsing engines.
2. *At paper scale*: print the calibrated model's Tables 3 and 4.

Run:  python examples/data_loading_optimization.py
"""

import tempfile

import numpy as np

from repro.analysis import format_table
from repro.candle import get_benchmark
from repro.core import load_csv_timed
from repro.experiments import run_experiment


def functional_demo() -> None:
    print("=== functional demo: real files, real parsers ===")
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for name, scale, sample_scale in (("nt3", 0.08, 0.03), ("p1b3", 0.05, 0.03)):
            bench = get_benchmark(name, scale=scale, sample_scale=sample_scale)
            train, _ = bench.write_files(tmp, rng=np.random.default_rng(0))
            timing = {}
            for method in ("original", "chunked", "dask"):
                _, timing[method] = load_csv_timed(train, method=method)
            rows.append(
                {
                    "file": f"{bench.spec.name} ({bench.features} cols x {bench.train_samples} rows)",
                    "original_s": round(timing["original"], 3),
                    "chunked_s": round(timing["chunked"], 3),
                    "dask_s": round(timing["dask"], 3),
                    "speedup": round(timing["original"] / timing["chunked"], 2),
                }
            )
    print(format_table(rows))
    print()


def paper_scale_tables() -> None:
    print("=== paper-scale model: Tables 3 and 4 ===")
    for eid in ("table3", "table4"):
        print(run_experiment(eid, fast=True).render())
        print()


if __name__ == "__main__":
    functional_demo()
    paper_scale_tables()
