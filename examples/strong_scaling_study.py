"""Strong-scaling study: NT3 on Summit, original vs optimized loader.

Reproduces the paper's §4-§5 strong-scaling story at paper scale
through the calibrated simulator: total epochs fixed at 384, epochs/GPU
= 384/N, linear LR scaling, and the crossover where data loading
overtakes the "TensorFlow" (training) time — then the improvement the
chunked loader buys at every GPU count, including the broadcast-delay
reduction (Figs 6a, 7b, 11, 12; Tables 2, 5).

Run:  python examples/strong_scaling_study.py [summit|theta]
"""

import sys

from repro.analysis import broadcast_overhead_seconds, compare_runs, format_table
from repro.candle.nt3 import NT3_SPEC
from repro.core import strong_scaling_plan
from repro.sim import ScaledRunSimulator

GPU_COUNTS = (1, 6, 12, 24, 48, 96, 192, 384)


def main(machine: str = "summit") -> None:
    sim = ScaledRunSimulator(machine)
    rows = []
    for n in GPU_COUNTS:
        plan = strong_scaling_plan(NT3_SPEC, n)
        orig = sim.run(NT3_SPEC, plan, method="original")
        opt = sim.run(NT3_SPEC, plan, method="chunked")
        comp = compare_runs(orig, opt)
        rows.append(
            {
                "workers": n,
                "epochs/worker": plan.epochs_per_worker,
                "tf_s": round(orig.train_s, 1),
                "load_s": round(orig.load_s, 1),
                "bcast_overhead_s": round(broadcast_overhead_seconds(orig.timeline), 1),
                "orig_total_s": round(orig.total_s, 1),
                "opt_total_s": round(opt.total_s, 1),
                "perf_impr_%": round(comp.performance_improvement_pct, 1),
                "energy_save_%": round(comp.energy_saving_pct, 1),
                "power_%": f"+{comp.power_increase_pct:.0f}",
            }
        )
    print(format_table(rows, title=f"NT3 strong scaling on {sim.machine.name}"))
    crossover = next(
        (r["workers"] for r in rows if r["load_s"] > r["tf_s"]), None
    )
    print(f"\ndata loading dominates the runtime from {crossover} workers on "
          f"(paper: 48 GPUs or more).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "summit")
