"""Chaos-testing the fault-tolerant collectives.

Two demonstrations of :mod:`repro.comms.ft` under injected faults:

1. **Surviving a mid-step rank kill** — 8 ranks run a short allreduce
   loop (a stand-in for data-parallel training steps) and one rank is
   killed mid-collective. The survivors detect the death, run the
   JOIN/COMMIT rebuild, and finish every step on the shrunken
   communicator; each surviving step result is bitwise identical to a
   flat allreduce over the surviving ranks' inputs. The recovery takes
   milliseconds where a checkpoint restart would take the better part
   of a minute.
2. **Corrupted chunk, retransmitted** — with wire CRC armed
   (``checksum=True``; it is *off* by default because the transports
   underneath carry link-layer integrity), a corrupted envelope is
   detected, NACKed, and retransmitted: the collective completes
   bit-identical with no demotion and no rebuild.

Run:  python examples/chaos_collectives.py
"""

import numpy as np

from repro.comms import CollectiveOptions
from repro.comms.ft import FaultToleranceOptions
from repro.comms.ft.engine import FaultTolerantEngine
from repro.mpi import run_spmd
from repro.mpi.communicator import canonical_reduce
from repro.resilience.faults import FaultInjector, FaultPlan

WORLD, LOCAL = 8, 4   # two simulated nodes, four ranks each
STEPS = 3
N = 4096

#: fast-turnaround knobs so the demo finishes in seconds; production
#: defaults beat at 250 ms and detect in ~1 s
FTO = FaultToleranceOptions(
    heartbeat_interval_s=0.005,
    chunk_deadline_s=0.1,
    retry_base_delay_s=0.001,
)


def step_input(rank: int, step: int) -> np.ndarray:
    return np.random.default_rng(1000 * step + rank).standard_normal(N)


def demo_rank_kill() -> None:
    print("1. mid-step rank kill -> elastic rebuild, training continues")
    victim = 5
    opts = CollectiveOptions(algorithm="hierarchical", fault_tolerance=FTO)
    plan = FaultPlan.single_message_fault("rank_kill", rank=victim, message=1)
    collect = {}

    def worker(comm):
        engine = FaultTolerantEngine(comm, opts)
        if comm.rank == 0:   # one rank narrates the rebuild consensus
            engine.on_rebuild(lambda rec: print(
                f"   rebuild @epoch {rec.epoch}: world {rec.old_world}->"
                f"{rec.new_world}, dead {list(rec.dead)}, coordinator "
                f"rank {rec.coordinator}, consensus {rec.elapsed_s * 1e3:.1f} ms"
            ))
        outs = []
        try:
            for step in range(STEPS):
                outs.append(engine.allreduce(
                    step_input(comm.rank, step), name=f"step{step}"
                ))
        finally:
            engine.close()
        collect[comm.rank] = (outs, engine.last_recovery, len(engine.rebuilds))
        return comm.rank

    results = run_spmd(
        WORLD, worker, local_size=LOCAL, fault_injector=FaultInjector(plan)
    )
    assert results[victim] is None, "the kill should be survivable, not fatal"
    survivors = [r for r in range(WORLD) if r != victim]
    recovery_ms = max(
        collect[r][1]["recovery_s"] for r in survivors) * 1e3
    print(f"   rank {victim} killed mid-collective; {len(survivors)} "
          f"survivors recovered in {recovery_ms:.1f} ms "
          f"(vs ~60 s for a checkpoint restart)")
    for step in range(STEPS):
        expect = canonical_reduce(
            [step_input(r, step) for r in survivors], "mean"
        )
        exact = all(
            np.array_equal(collect[r][0][step], expect) for r in survivors
        )
        print(f"   step {step}: survivor allreduce bitwise == flat allreduce "
              f"over survivors: {exact}")
        assert exact
    assert all(collect[r][2] == 1 for r in survivors)


def demo_corrupt_retransmit() -> None:
    print("2. corrupted chunk -> CRC catch -> retransmit (checksum=True)")
    opts = CollectiveOptions(
        algorithm="hierarchical",
        fault_tolerance=FTO.evolve(checksum=True),
    )
    plan = FaultPlan.single_message_fault("msg_corrupt", rank=1, message=2)
    collect = {}

    def worker(comm):
        engine = FaultTolerantEngine(comm, opts)
        try:
            out = engine.allreduce(step_input(comm.rank, 0), name="g")
        finally:
            engine.close()
        collect[comm.rank] = (
            out, dict(engine.channel.counters), len(engine.rebuilds)
        )
        return comm.rank

    run_spmd(WORLD, worker, local_size=LOCAL,
             fault_injector=FaultInjector(plan))
    expect = canonical_reduce(
        [step_input(r, 0) for r in range(WORLD)], "mean"
    )
    totals = {}
    for _, counters, _ in collect.values():
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
    assert all(np.array_equal(out, expect) for out, _, _ in collect.values())
    assert all(rebuilds == 0 for _, _, rebuilds in collect.values())
    print(f"   checksum failures caught: {totals.get('checksum_failures', 0)}, "
          f"retransmit requests: {totals.get('retransmit_requests', 0)}")
    print("   collective completed bit-identical, no demotion, no rebuild")


def main() -> None:
    demo_rank_kill()
    demo_corrupt_retransmit()


if __name__ == "__main__":
    main()
