"""Quickstart: train a CANDLE benchmark under Horovod data parallelism.

Runs the NT3 benchmark (scaled down) on 4 SPMD ranks exactly the way
the paper parallelizes it: per-rank model build with different random
weights, rank-0 broadcast for consistent initialization, gradient
averaging through a DistributedOptimizer, linear learning-rate scaling,
and the three-phase control flow (load → train → evaluate).

Run:  python examples/quickstart.py
"""

from repro.candle import get_benchmark
from repro.core import run_parallel_benchmark, strong_scaling_plan


def main() -> None:
    # NT3 at 1% feature scale, 50% of its Table 1 sample count
    bench = get_benchmark("nt3", scale=0.01, sample_scale=0.5)
    print(f"benchmark: {bench.spec.name} — {bench.features} features, "
          f"{bench.train_samples} train samples")

    # strong scaling: 32 total epochs split over 4 workers, lr x 4
    plan = strong_scaling_plan(bench.spec, nworkers=4, total_epochs=32)
    print(f"plan: {plan.nworkers} workers x {plan.epochs_per_worker} epochs, "
          f"batch {plan.batch_size}, lr {plan.learning_rate}")

    result = run_parallel_benchmark(bench, plan, seed=7)

    print("\nphase seconds (slowest rank):")
    for phase, seconds in result.phase_seconds().items():
        print(f"  {phase:<6} {seconds:8.2f} s")

    acc = result.final_train_metric.get("accuracy")
    print(f"\nfinal training accuracy: {acc:.3f}")
    print(f"test-set metrics (identical on every rank): "
          f"{ {k: round(v, 4) for k, v in result.ranks[0].eval_metrics.items()} }")

    waits = [e.duration_s for e in result.timeline.events_named("negotiate_broadcast")]
    print(f"\nbroadcast rendezvous waits per rank: "
          f"{[round(w, 3) for w in sorted(waits)]} s")
    n_allreduce = len(result.timeline.events_named("nccl_allreduce"))
    print(f"gradient allreduce operations recorded: {n_allreduce}")


if __name__ == "__main__":
    main()
