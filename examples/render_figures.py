"""Render the paper's key figures as ASCII charts in the terminal.

Draws Fig 6a (NT3 strong scaling, log-x), Fig 7a (the 384-GPU power
trace), Fig 11 (original vs optimized total time), and Fig 18a (weak
scaling) from the calibrated simulator — shape-faithful, zero
matplotlib.

Run:  python examples/render_figures.py
"""

from repro.analysis import bar_chart, line_chart, power_strip
from repro.candle.nt3 import NT3_SPEC
from repro.cluster import PowerMeter
from repro.cluster.machine import SUMMIT
from repro.core import strong_scaling_plan, weak_scaling_plan
from repro.sim import ScaledRunSimulator


def fig6a(sim) -> None:
    counts = [1, 6, 12, 24, 48, 96, 192, 384]
    tf, load, total = [], [], []
    for n in counts:
        r = sim.run(NT3_SPEC, strong_scaling_plan(NT3_SPEC, n), keep_profiles=False)
        tf.append(r.train_s)
        load.append(r.load_s)
        total.append(r.total_s)
    print(
        line_chart(
            counts,
            {"TensorFlow": tf, "Data Loading": load, "Total": total},
            log_x=True,
            title="Fig 6a — NT3 on Summit, strong scaling (seconds vs GPUs)",
        )
    )


def fig7a(sim) -> None:
    r = sim.run(NT3_SPEC, strong_scaling_plan(NT3_SPEC, 384))
    rank = max(r.profiles)  # the slowest loader
    samples = PowerMeter(SUMMIT.power_sample_hz).sample(r.profiles[rank])
    print(
        power_strip(
            [s.time_s for s in samples],
            [s.power_w for s in samples],
            title="Fig 7a — GPU power over time, 384 GPUs (load | idle | train)",
        )
    )


def fig11(sim) -> None:
    labels, values = [], []
    for n in (24, 96, 384):
        plan = strong_scaling_plan(NT3_SPEC, n)
        orig = sim.run(NT3_SPEC, plan, method="original", keep_profiles=False)
        opt = sim.run(NT3_SPEC, plan, method="chunked", keep_profiles=False)
        labels += [f"{n} GPUs orig", f"{n} GPUs opt"]
        values += [orig.total_s, opt.total_s]
    print(bar_chart(labels, values, title="Fig 11 — NT3 total seconds, original vs optimized", unit="s"))


def fig18a(sim) -> None:
    counts = [6, 48, 384, 768, 1536, 3072]
    orig, opt = [], []
    for n in counts:
        plan = weak_scaling_plan(NT3_SPEC, n)
        orig.append(sim.run(NT3_SPEC, plan, method="original", keep_profiles=False).total_s)
        opt.append(sim.run(NT3_SPEC, plan, method="chunked", keep_profiles=False).total_s)
    print(
        line_chart(
            counts,
            {"original": orig, "optimized": opt},
            log_x=True,
            title="Fig 18a — NT3 weak scaling on Summit (total seconds vs GPUs)",
        )
    )


if __name__ == "__main__":
    sim = ScaledRunSimulator("summit")
    fig6a(sim)
    print()
    fig7a(sim)
    print()
    fig11(sim)
    print()
    fig18a(sim)
