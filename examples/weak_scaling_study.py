"""Weak-scaling study: NT3 at 8 epochs/GPU on 6-3,072 Summit GPUs.

Reproduces §6: the time-per-epoch growth from the Horovod allreduce
overhead (Table 6's ">3x on 3,072 GPUs"), and the optimized loader's
improvement band shrinking as communication dilutes the I/O win
(Fig 18). Accuracy stays ~1.0 at 8 epochs/GPU, verified by real
training at reduced scale.

Run:  python examples/weak_scaling_study.py
"""

from repro.analysis import compare_runs, format_table
from repro.candle import get_benchmark
from repro.candle.nt3 import NT3_SPEC
from repro.core import run_parallel_benchmark, weak_scaling_plan
from repro.sim import ScaledRunSimulator

GPU_COUNTS = (6, 48, 384, 768, 1536, 3072)


def simulated_sweep() -> None:
    sim = ScaledRunSimulator("summit")
    rows = []
    for n in GPU_COUNTS:
        plan = weak_scaling_plan(NT3_SPEC, n)  # 8 epochs/GPU (§6)
        orig = sim.run(NT3_SPEC, plan, method="original")
        opt = sim.run(NT3_SPEC, plan, method="chunked")
        comp = compare_runs(orig, opt)
        rows.append(
            {
                "gpus": n,
                "nodes": sim.machine.nodes_for(n),
                "time_per_epoch_s": round(orig.time_per_epoch_s, 1),
                "allreduce_s_per_epoch": round(
                    orig.train_comm_s / plan.epochs_per_worker, 1
                ),
                "perf_impr_%": round(comp.performance_improvement_pct, 1),
                "energy_save_%": round(comp.energy_saving_pct, 1),
            }
        )
    print(format_table(rows, title="NT3 weak scaling on Summit (8 epochs/GPU)"))
    ratio = rows[-1]["time_per_epoch_s"] / 10.3
    print(f"\ntime/epoch at 3,072 GPUs is {ratio:.1f}x the sequential 10.3 s "
          "(paper: more than 3x, §7).")


def accuracy_check() -> None:
    bench = get_benchmark("nt3", scale=0.008, sample_scale=0.5)
    plan = weak_scaling_plan(bench.spec, 4, epochs_per_worker=8)
    res = run_parallel_benchmark(bench, plan, seed=11)
    print(f"\nreal training at 8 epochs/worker: accuracy = "
          f"{res.final_train_metric['accuracy']:.3f} (paper: 1.0)")


if __name__ == "__main__":
    simulated_sweep()
    accuracy_check()
