"""Why Horovod: the parameter-server baseline, measured (paper §1).

Distributed TensorFlow's native gRPC path routes every worker's
gradients through parameter servers; the paper adopts Horovod's MPI
allreduce instead. This example shows both sides:

1. cost model: per-step gradient-exchange time for NT3's 620 MB fused
   gradient — PS scales linearly with workers, the ring stays flat;
2. functional: a real synchronous PS run vs a real Horovod run on the
   same small problem produce the same learning curve (the semantics
   agree; only the communication pattern differs).

Run:  python examples/parameter_server_vs_horovod.py
"""

import numpy as np

from repro.analysis import format_table, line_chart
from repro.candle.nt3 import NT3_SPEC
from repro.cluster.machine import SUMMIT
from repro.hvd.fusion import DEFAULT_FUSION_BYTES
from repro.mpi.network import CollectiveCostModel
from repro.ps import PsCostModel, run_parameter_server_training


def cost_comparison() -> None:
    ring = CollectiveCostModel(SUMMIT.fabric, ranks_per_node=6)
    ps = PsCostModel(SUMMIT.fabric)
    nbytes = NT3_SPEC.gradient_bytes
    pieces = [DEFAULT_FUSION_BYTES] * (nbytes // DEFAULT_FUSION_BYTES)
    if nbytes % DEFAULT_FUSION_BYTES:
        pieces.append(nbytes % DEFAULT_FUSION_BYTES)
    counts = [6, 12, 24, 48, 96, 192, 384]
    ps_ms = [ps.step_seconds(nbytes, n) * 1e3 for n in counts]
    ring_ms = [sum(ring.allreduce_hierarchical(p, n) for p in pieces) * 1e3 for n in counts]
    print(
        line_chart(
            counts,
            {"parameter server": ps_ms, "ring allreduce": ring_ms},
            log_x=True,
            title="per-step gradient exchange, NT3 gradient (ms vs workers)",
        )
    )
    rows = [
        {"workers": n, "ps_ms": round(p, 1), "ring_ms": round(r, 1), "ratio": round(p / r, 1)}
        for n, p, r in zip(counts, ps_ms, ring_ms)
    ]
    print()
    print(format_table(rows))


def functional_comparison() -> None:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(120, 6))
    y = np.eye(2)[(x[:, 0] > 0).astype(int)]

    def build():
        from repro.nn import SGD, Activation, Dense, Sequential

        m = Sequential([Dense(5, activation="tanh"), Dense(2), Activation("softmax")])
        m.build((6,), seed=3)
        m.compile(SGD(lr=0.1), "categorical_crossentropy")
        return m

    res_sync = run_parameter_server_training(
        nworkers=3, build_model=build, data=(x, y), steps=30, batch_size=30
    )
    res_async = run_parameter_server_training(
        nworkers=3, build_model=build, data=(x, y), steps=30, batch_size=30,
        mode="async",
    )
    print("\nfunctional parameter-server runs (3 workers, 30 steps):")
    for res in (res_sync, res_async):
        print(f"  {res.mode:<6} loss {np.mean(res.losses[:3]):.4f} -> "
              f"{np.mean(res.losses[-3:]):.4f} ({res.server_updates} server updates)")


if __name__ == "__main__":
    cost_comparison()
    functional_comparison()
