"""CANDLE/Supervisor-style hyperparameter search (paper Fig 1b).

The paper's system overview places a supervisor/workflow manager above
the benchmarks for hyperparameter optimization. This example sweeps the
exact hyperparameters the paper studies — epochs, batch size, learning
rate — over a scaled-down NT3 with a grid search, then refines the
learning rate with a random search, and prints the trial database.

Run:  python examples/hyperparameter_search.py
"""

import numpy as np

from repro.analysis import format_table
from repro.candle import get_benchmark
from repro.core.parallel import run_parallel_benchmark
from repro.core.scaling import ScalingPlan
from repro.supervisor import GridSearch, ParameterSpace, RandomSearch, Supervisor


def main() -> None:
    bench = get_benchmark("nt3", scale=0.005, sample_scale=0.3)
    data = bench.synth_arrays(np.random.default_rng(0))

    def runner(cfg, seed):
        plan = ScalingPlan(
            benchmark="NT3",
            mode="strong",
            nworkers=1,
            epochs_per_worker=cfg["epochs"],
            batch_size=cfg["batch"],
            learning_rate=cfg["lr"],
        )
        res = run_parallel_benchmark(bench, plan, data=data, seed=seed)
        return {
            "loss": res.final_train_metric["loss"],
            "accuracy": res.final_train_metric["accuracy"],
        }

    supervisor = Supervisor(runner, base_seed=42)

    # stage 1: coarse grid over the paper's knobs
    grid = GridSearch(
        ParameterSpace(epochs=[2, 6], batch=[10, 20, 56], lr=[0.001, 0.004])
    )
    db = supervisor.run(grid)
    print(format_table(db.as_rows(), title="stage 1: grid search"))
    best = db.best("accuracy", mode="max")
    print(f"\nbest so far: {best.config} -> accuracy {best.metrics['accuracy']:.3f}")

    # stage 2: random-search refinement of the learning rate
    refine = RandomSearch(
        ParameterSpace(
            epochs=[best.config["epochs"]],
            batch=[best.config["batch"]],
            lr=("loguniform", 5e-4, 5e-2),
        ),
        n_trials=6,
        seed=1,
    )
    supervisor.run(refine, db=db)
    print()
    print(format_table(db.as_rows(), title="all trials after refinement"))
    best = db.best("accuracy", mode="max")
    print(f"\nfinal best: {best.config} -> accuracy {best.metrics['accuracy']:.3f} "
          f"({len(db)} trials, {len(db.failed())} failed)")


if __name__ == "__main__":
    main()
