"""Fault tolerance: checkpoint/restart (the paper's §7 future work).

Runs NT3 under Horovod through :func:`repro.core.run_resilient_benchmark`:
a :class:`~repro.resilience.CheckpointManager` writes an atomic,
checksummed checkpoint every 2 epochs, a deterministic
:class:`~repro.resilience.FaultPlan` kills rank 1 mid-training, and the
supervisor loop retries with backoff, resuming every rank from the
newest valid checkpoint. The recovered run's final test loss is
bit-identical to an uninterrupted run of the same total epochs (fixed
shuffle order + restored RNG streams). A second scenario makes the
crash *permanent*: the supervisor shrinks the world to the survivors
and re-derives the epoch partition and learning rate from the paper's
scaling rules.

Run:  python examples/checkpoint_restart.py
"""

import tempfile

from repro.candle import get_benchmark
from repro.core.parallel import run_resilient_benchmark
from repro.core.scaling import strong_scaling_plan
from repro.resilience import FaultPlan, RetryPolicy

WORKERS = 2
TOTAL_EPOCHS = 8  # 4 global epochs per worker (strong scaling)
CRASH_EPOCH = 2  # global epoch at whose end rank 1 dies


def main() -> None:
    bench = get_benchmark("nt3", scale=0.005, sample_scale=0.3)
    plan = strong_scaling_plan(
        bench.spec, nworkers=WORKERS, total_epochs=TOTAL_EPOCHS, batch_size=20
    )

    print(f"scenario 1: transient crash at epoch {CRASH_EPOCH}, "
          f"checkpoints every 2 epochs")
    result = run_resilient_benchmark(
        bench,
        plan,
        tempfile.mkdtemp(),
        seed=0,
        every_n_epochs=2,
        fault_plan=FaultPlan.single_crash(rank=1, epoch=CRASH_EPOCH),
        retry=RetryPolicy(max_retries=2, base_delay_s=0.0),
    )
    for a in result.attempts:
        print(f"  attempt {a.attempt}: {a.status:9s} world={a.nworkers} "
              f"resumed from epoch {a.start_epoch}"
              + (f" (failed ranks {a.failed_ranks})" if a.failed_ranks else ""))
    print(f"  recovered: {result.recovered}, final loss {result.final_loss:.6f}")

    print("reference: the same run with no faults injected")
    clean = run_resilient_benchmark(
        bench, plan, tempfile.mkdtemp(), seed=0, every_n_epochs=2
    )
    print(f"  clean loss {clean.final_loss:.6f} -> bit-exact recovery: "
          f"{clean.final_loss == result.final_loss}")

    print("scenario 2: rank 1 dies permanently -> elastic shrink")
    shrunk = run_resilient_benchmark(
        bench,
        plan,
        tempfile.mkdtemp(),
        seed=0,
        every_n_epochs=2,
        fault_plan=FaultPlan.single_crash(rank=1, epoch=1, permanent=True),
        retry=RetryPolicy(max_retries=2, base_delay_s=0.0),
    )
    fp = shrunk.final_plan
    print(f"  dead ranks {shrunk.dead_ranks}; world {shrunk.initial_plan.nworkers} "
          f"-> {shrunk.final_world}, replanned to {fp.epochs_per_worker} "
          f"epochs/worker at lr {fp.learning_rate}")
    print(f"  completed with final loss {shrunk.final_loss:.6f}")


if __name__ == "__main__":
    main()
