"""Fault tolerance: checkpoint/restart (the paper's §7 future work).

Trains NT3 under Horovod with a rank-0 checkpoint every 2 epochs, kills
the job halfway (a simulated node failure — one rank raises), then
restarts on fresh "processes": the checkpoint is restored on rank 0,
broadcast to everyone, and training continues from the saved epoch. The
resumed run's final loss matches an uninterrupted run of the same total
epochs, bit for bit (fixed shuffle order).

Run:  python examples/checkpoint_restart.py
"""

import os
import tempfile

import numpy as np

from repro import hvd
from repro.candle import get_benchmark
from repro.mpi import run_spmd
from repro.mpi.runtime import SpmdError
from repro.nn import get_optimizer

WORKERS = 2
TOTAL_EPOCHS = 6
CRASH_AFTER = 3  # epochs before the simulated failure


def build(bench, seed):
    model = bench.build_model(seed=seed)
    opt = hvd.DistributedOptimizer(get_optimizer("sgd", lr=0.002 * WORKERS))
    model.compile(opt, "categorical_crossentropy", metrics=["accuracy"])
    return model


def main() -> None:
    bench = get_benchmark("nt3", scale=0.005, sample_scale=0.3)
    data = bench.synth_arrays(np.random.default_rng(0))
    ckpt = os.path.join(tempfile.mkdtemp(), "nt3.npz")

    def crashing_job(comm):
        hvd.init(comm)
        try:
            model = build(bench, seed=comm.rank)
            from repro.nn.callbacks import LambdaCallback

            def maybe_crash(epoch, logs):
                if epoch + 1 == CRASH_AFTER and comm.rank == 1:
                    raise RuntimeError("simulated node failure")

            model.fit(
                data.x_train, data.y_train,
                batch_size=20, epochs=TOTAL_EPOCHS, shuffle=False,
                callbacks=[
                    hvd.BroadcastGlobalVariablesCallback(0),
                    hvd.CheckpointCallback(ckpt, every_n_epochs=2),
                    LambdaCallback(on_epoch_end=maybe_crash),
                ],
            )
        finally:
            hvd.shutdown()

    print(f"phase 1: training {TOTAL_EPOCHS} epochs, crash injected at epoch {CRASH_AFTER}...")
    try:
        run_spmd(WORKERS, crashing_job)
    except SpmdError as exc:
        print(f"  job died as planned: {exc}")
    assert os.path.exists(ckpt), "checkpoint should have survived the crash"

    def restart_job(comm):
        hvd.init(comm)
        try:
            model = build(bench, seed=100 + comm.rank)  # fresh random init
            meta = hvd.resume_from_checkpoint(model, ckpt)
            start = meta["epoch"] + 1
            print(f"  rank {comm.rank}: resuming from epoch {start}")
            model.fit(
                data.x_train, data.y_train,
                batch_size=20, epochs=TOTAL_EPOCHS - start, shuffle=False,
                initial_epoch=start,
            )
            # evaluate with dropout off: rank-identical if weights agree
            return model.evaluate(data.x_test, data.y_test)["loss"]
        finally:
            hvd.shutdown()

    print("phase 2: restarting from the checkpoint...")
    losses = run_spmd(WORKERS, restart_job)
    print(f"  final test loss after resume: {losses[0]:.6f} (identical on "
          f"all ranks: {max(losses) - min(losses) < 1e-12})")


if __name__ == "__main__":
    main()
