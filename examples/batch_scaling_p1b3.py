"""P1B3 batch-size scaling strategies (paper §4.2.4 / Fig 10).

P1B3 has 900,100 training samples, so its batch size can grow with the
worker count. Three strategies — linear, square-root, cubic-root — are
compared on runtime (simulated at paper scale, where linear scaling
OOMs at 192/384 GPUs) and on accuracy (real training at reduced scale,
where the gentler cubic-root scaling preserves quality best).

Run:  python examples/batch_scaling_p1b3.py
"""

from repro.analysis import format_table
from repro.candle import get_benchmark
from repro.candle.p1b3 import P1B3_SPEC
from repro.core import run_parallel_benchmark, scale_batch_size, strong_scaling_plan
from repro.core.batch_scaling import BatchMemoryError, check_batch_fits
from repro.core.scaling import ScalingPlan
from repro.experiments.fig10 import P1B3_ACTIVATION_MULTIPLIER
from repro.sim import ScaledRunSimulator

STRATEGIES = ("linear", "sqrt", "cubic")
GPU_COUNTS = (6, 24, 48, 96, 192, 384)


def simulated_runtimes() -> None:
    sim = ScaledRunSimulator("summit")
    rows = []
    for n in GPU_COUNTS:
        row = {"gpus": n}
        for strategy in STRATEGIES:
            batch = scale_batch_size(P1B3_SPEC.batch_size, n, strategy)
            try:
                check_batch_fits(
                    batch, P1B3_SPEC.elements_per_sample,
                    P1B3_ACTIVATION_MULTIPLIER, device_mem_gb=16.0,
                )
            except BatchMemoryError:
                row[f"{strategy} (b={batch})"] = "OOM"
                continue
            plan = strong_scaling_plan(P1B3_SPEC, n, batch_strategy=strategy)
            report = sim.run(P1B3_SPEC, plan, method="original", keep_profiles=False)
            row[f"{strategy} (b={batch})"] = round(report.total_s, 1)
        rows.append(row)
    print(format_table(rows, title="P1B3 total seconds by batch strategy (Summit)"))


def real_accuracy() -> None:
    print("\nreal training (reduced scale), MAE by strategy at 48 workers:")
    bench = get_benchmark("p1b3", scale=0.05, sample_scale=0.02)
    rows = []
    for strategy in STRATEGIES:
        batch = scale_batch_size(P1B3_SPEC.batch_size, 48, strategy)
        plan = ScalingPlan(
            benchmark="P1B3", mode="strong", nworkers=2, epochs_per_worker=15,
            batch_size=min(batch, bench.train_samples), learning_rate=0.02,
        )
        res = run_parallel_benchmark(bench, plan, seed=3)
        rows.append(
            {"strategy": strategy, "batch": batch,
             "train_mae": round(res.final_train_metric["mae"], 4)}
        )
    print(format_table(rows))
    best = min(rows, key=lambda r: r["train_mae"])["strategy"]
    print(f"\nbest accuracy: {best} (paper: cubic root, Fig 10b)")


if __name__ == "__main__":
    simulated_runtimes()
    real_accuracy()
