"""Re-enact the paper's diagnosis: profile, find read_csv, fix it.

The paper's §4 methodology in miniature:

1. run an NT3 workload end-to-end with phase timing and cProfile;
2. observe that the data-loading phase (and `read_csv`'s slow engine)
   dominates, exactly as "on 48 GPUs or more, the data-loading time
   dominates the total runtime";
3. apply the §5 fix (chunked low_memory=False) and re-measure.

Run:  python examples/find_the_bottleneck.py
"""

import numpy as np

from repro.analysis import PhaseProfiler, bar_chart, profile_callable
from repro.candle import get_benchmark
from repro.ingest import DataSource, LoaderConfig


def main() -> None:
    # a wide-row NT3-shaped file: many columns, few rows
    bench = get_benchmark("nt3", scale=0.15, sample_scale=0.05)
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        train, test = bench.write_files(tmp, rng=np.random.default_rng(0))

        # ---- step 1: measure the phases with the ORIGINAL loader --------
        source = DataSource(train)
        profiler = PhaseProfiler()
        with profiler.phase("data_loading"):
            frame = source.load(LoaderConfig(method="original")).frame
        with profiler.phase("training"):
            data = bench.from_frames(frame, frame)
            model = bench.build_model(seed=1)
            model.compile("sgd", "categorical_crossentropy", lr=0.001)
            model.fit(data.x_train, data.y_train, batch_size=20, epochs=1)

        print("phase seconds (original loader):")
        for name, seconds in profiler.as_dict().items():
            print(f"  {name:<14} {seconds:7.2f} s")
        print(f"dominant phase: {profiler.dominant_phase()} "
              f"({profiler.fraction(profiler.dominant_phase()) * 100:.0f}% of total)\n")

        # ---- step 2: cProfile points at the parser -----------------------
        _, report = profile_callable(
            lambda: source.load(LoaderConfig(method="original")), top=6
        )
        print("cProfile (top cumulative) — the parser is the hot spot:")
        print("\n".join(report.splitlines()[:14]))
        print()

        # ---- step 3: apply the paper's fix and compare --------------------
        t_orig = source.load(LoaderConfig(method="original")).seconds
        t_opt = source.load(LoaderConfig(method="chunked")).seconds
        print(bar_chart(
            ["original (low_memory=True)", "optimized (chunked)"],
            [t_orig, t_opt],
            title="data-loading seconds, before vs after the fix",
            unit="s",
        ))
        print(f"\nspeedup: {t_orig / t_opt:.1f}x "
              "(paper: ~5.7x for the NT3 training file)")


if __name__ == "__main__":
    main()
