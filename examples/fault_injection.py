"""Deterministic fault injection across the SPMD and Horovod layers.

Three short demonstrations of :mod:`repro.resilience`'s fault
machinery:

1. **Reproducible schedules** — :meth:`FaultPlan.random` with the same
   seed draws the same faults, spec for spec; a run report can name the
   exact schedule that produced it.
2. **SPMD start-time faults** — :func:`repro.mpi.run_spmd` fires
   ``on_rank_start`` hooks, and when several ranks die the raised
   :class:`~repro.mpi.runtime.SpmdError` aggregates *all* failures
   (not just the first), which is what a post-mortem needs.
3. **Training-time faults** — a straggler and a transient collective
   failure injected into a real 2-rank P1B2 training run through
   :class:`repro.hvd.FaultInjectionCallback`, recovered by the
   resilient runner.

Run:  python examples/fault_injection.py
"""

import tempfile

from repro.candle import get_benchmark
from repro.core.parallel import run_resilient_benchmark
from repro.core.scaling import strong_scaling_plan
from repro.mpi import run_spmd
from repro.mpi.runtime import SpmdError
from repro.resilience import FaultInjector, FaultPlan, FaultSpec, RetryPolicy


def demo_reproducible_schedules() -> None:
    print("1. seeded schedules are reproducible")
    plan_a = FaultPlan.random(nranks=4, epochs=6, n_faults=5, seed=42)
    plan_b = FaultPlan.random(nranks=4, epochs=6, n_faults=5, seed=42)
    print(f"   {plan_a.describe()}")
    print(f"   same seed, same draw: {plan_a.specs == plan_b.specs}")
    plan_c = FaultPlan.random(nranks=4, epochs=6, n_faults=5, seed=43)
    print(f"   different seed differs: {plan_a.specs != plan_c.specs}")


def demo_spmd_aggregation() -> None:
    print("2. run_spmd fires start-time faults and aggregates every failure")
    plan = FaultPlan(
        specs=(
            FaultSpec("crash", rank=1),  # epoch=None -> fires at rank start
            FaultSpec("crash", rank=3),
        )
    )
    injector = FaultInjector(plan)

    def job(comm):
        return comm.rank

    try:
        run_spmd(4, job, fault_injector=injector)
    except SpmdError as exc:
        print(f"   failed ranks: {exc.failed_ranks} (both reported, "
              f"first cause: {type(exc.cause).__name__})")


def demo_training_faults() -> None:
    print("3. training-time faults: straggler + transient collective failure")
    bench = get_benchmark("p1b2", scale=0.05, sample_scale=0.2)
    # 8 total epochs over 2 workers -> each runs global epochs 0..3
    plan = strong_scaling_plan(bench.spec, nworkers=2, total_epochs=8)
    faults = FaultPlan(
        specs=(
            FaultSpec("straggler", rank=1, epoch=1, delay_s=0.05),
            FaultSpec("collective", rank=0, epoch=2),
        )
    )
    result = run_resilient_benchmark(
        bench,
        plan,
        tempfile.mkdtemp(),
        seed=0,
        every_n_epochs=1,
        fault_plan=faults,
        retry=RetryPolicy(max_retries=2, base_delay_s=0.0),
    )
    for a in result.attempts:
        print(f"   attempt {a.attempt}: {a.status:9s} "
              f"resumed from epoch {a.start_epoch}"
              + (f" (failed ranks {a.failed_ranks})" if a.failed_ranks else ""))
    print(f"   recovered: {result.recovered}, "
          f"final loss {result.final_loss:.6f}")


def main() -> None:
    demo_reproducible_schedules()
    demo_spmd_aggregation()
    demo_training_faults()


if __name__ == "__main__":
    main()
