"""Figure 11: NT3 Summit original vs optimized — regenerates the paper's rows/series."""


def test_fig11(run_and_print):
    r = run_and_print("fig11")
    assert 60 < r.measured["max perf improvement %"] < 80
