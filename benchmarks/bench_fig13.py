"""Figure 13: NT3 Theta improvement — regenerates the paper's rows/series."""


def test_fig13(run_and_print):
    r = run_and_print("fig13")
    assert 30 < r.measured["max perf improvement %"] < 50
