"""Microbenchmark: the zero-copy training step on an NT3-shaped model.

Measures ``train_on_batch`` on the NT3 conv stack under three
configurations:

- **seed path** — float64, per-layer parameter arrays, per-parameter
  optimizer updates and pack/unpack gradient fusion (the repo's
  original training step);
- **arena f64** — parameters/gradients in a flat
  :class:`~repro.nn.ParameterArena`, fused optimizer kernels
  (bit-identical to the seed path, the equivalence this bench asserts);
- **arena f32** — the same arena step at float32, halving memory
  traffic per step (the optimized configuration).

Also isolates the parameter-update phase and compares its allocation
high-water mark (tracemalloc peak): the fused slab kernels update every
parameter through preallocated scratch, where the per-parameter path
allocates fresh temporaries per parameter per step.

The overlap section measures the PR 7 wait-free-backprop scheduler: the
same NT3 step at world 12 (2 nodes x 6 workers) on an emulated,
compute-dilated Summit fabric, overlapped vs serialized, asserting the
overlapped step is faster *and* lands bitwise-identical parameters.

Run standalone::

    python benchmarks/bench_trainstep.py --smoke   # CI-sized, identity only
    python benchmarks/bench_trainstep.py --full    # asserts arena f32 >= 2x
                                                   # seed path, update-phase
                                                   # allocations >= 5x lower,
                                                   # overlap >= 1.3x serialized
                                                   # (overlap fraction >= 0.6),
                                                   # and bitwise identity
    python benchmarks/bench_trainstep.py --smoke --json BENCH_trainstep.json

Under pytest the smoke path always runs; the full path is opt-in via
``TRAINSTEP_BENCH_FULL=1``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc

import numpy as np
import pytest

from repro import hvd
from repro.analysis.report import format_table
from repro.candle import get_benchmark
from repro.comms import CollectiveOptions
from repro.mpi import run_spmd
from repro.nn.optimizers import SGD
from repro.train import TrainOptions

#: NT3 geometry at two sizes (features = 60483 * scale)
SMOKE_SHAPE = dict(scale=0.01, sample_scale=0.05)   # 604 features
FULL_SHAPE = dict(scale=0.05, sample_scale=0.05)    # 3024 features

BATCH = 20  # NT3's Table-1 batch size

CONFIGS = [
    ("seed (f64, per-param)", TrainOptions(arena=False)),
    ("arena f64 (fused)", TrainOptions()),
    ("arena f32 (fused)", TrainOptions(dtype="float32")),
]

# -- the overlap operating point --------------------------------------------
#
# The threaded runtime computes ~3 orders of magnitude slower than a
# V100, so real Summit wire times would be invisible next to emulated
# compute; ``emulate_fabric_scale`` dilates the priced seconds by a
# matching factor, putting the emulation at Summit's comm-to-compute
# ratio (comm ~0.6-0.7x of the backward window at world 12, where the
# wait-free schedule has something real to hide).
OVERLAP_WORLD = 12   # the paper's 2 nodes x 6 GPUs
OVERLAP_LOCAL = 6
OVERLAP_TRAIN = TrainOptions(
    overlap=True,
    overlap_channels=4,
    collective=CollectiveOptions(
        fusion_bytes=1 << 16,
        emulate_fabric="summit",
        emulate_fabric_scale=550.0,
    ),
)


def _data(features: int, dtype=np.float64, n: int = BATCH, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, features, 1)).astype(dtype)
    y = np.eye(2, dtype=dtype)[rng.integers(0, 2, size=n)]
    return x, y


def _compiled(bench, train, seed=1):
    model = bench.build_model(seed=seed, train=train)
    model.compile("sgd", "categorical_crossentropy", lr=0.001)
    return model


def time_train_step(bench, steps: int) -> dict[str, float]:
    """Mean seconds per ``train_on_batch`` for each configuration."""
    out = {}
    for label, train in CONFIGS:
        model = _compiled(bench, train)
        x, y = _data(bench.features, dtype=model.dtype)
        for _ in range(2):
            model.train_on_batch(x, y)  # warm caches and scratch buffers
        t0 = time.perf_counter()
        for _ in range(steps):
            model.train_on_batch(x, y)
        out[label] = (time.perf_counter() - t0) / steps
    return out


def update_alloc_peak(bench, arena: bool, repeats: int = 5) -> int:
    """Allocation high-water (bytes) of one parameter-update phase.

    The forward/backward work is done outside the traced window so the
    measurement isolates exactly what the fused kernels replace:
    ``apply_gradients`` temporaries vs in-place slab updates.
    """
    model = _compiled(bench, TrainOptions(arena=arena))
    x, y = _data(bench.features)
    for _ in range(3):
        model.train_on_batch(x, y)  # steady state: scratch + optimizer state
    y_pred = model._forward(x, training=True)
    model._backward(y, y_pred)
    params, grads = model.named_parameters(), model.named_gradients()
    tracemalloc.start()
    peaks = []
    for _ in range(repeats):
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        if arena:
            model.optimizer.apply_arena(model.arena)
        else:
            model.optimizer.apply_gradients(params, grads)
        peaks.append(tracemalloc.get_traced_memory()[1] - base)
    tracemalloc.stop()
    return min(peaks)  # steadiest step: no warmup or GC noise


def check_single_process_identity(bench, steps: int) -> bool:
    """Arena-fused training == per-parameter training, bitwise, at f64."""
    ref = _compiled(bench, TrainOptions(arena=False))
    fused = _compiled(bench, TrainOptions())
    x, y = _data(bench.features)
    for _ in range(steps):
        ref.train_on_batch(x, y)
        fused.train_on_batch(x, y)
    return all(
        np.array_equal(a, b)
        for a, b in zip(ref.get_weights(), fused.get_weights())
    )


def check_distributed_identity(bench, epochs: int = 2) -> bool:
    """Zero-copy slab allreduce == pack/unpack allreduce, bitwise (2 ranks)."""
    x, y = _data(bench.features, n=4 * BATCH)

    def run(arena):
        def worker(comm):
            hvd.init(comm)
            try:
                model = bench.build_model(
                    seed=1 + comm.rank, train=TrainOptions(arena=arena)
                )
                opt = hvd.DistributedOptimizer(SGD(lr=0.001, momentum=0.9))
                model.compile(opt, "categorical_crossentropy")
                shard = slice(comm.rank * 2 * BATCH, (comm.rank + 1) * 2 * BATCH)
                model.fit(
                    x[shard], y[shard], batch_size=BATCH, epochs=epochs,
                    shuffle=False,
                    callbacks=[hvd.BroadcastGlobalVariablesCallback(0)],
                )
                return model.get_weights()
            finally:
                hvd.shutdown()

        return run_spmd(2, worker)

    arena_w = run(True)
    packed_w = run(False)
    ranks_agree = all(
        np.array_equal(a, b) for a, b in zip(arena_w[0], arena_w[1])
    )
    paths_agree = all(
        np.array_equal(a, p) for a, p in zip(arena_w[0], packed_w[0])
    )
    return ranks_agree and paths_agree


# -- compute/communication overlap ------------------------------------------

def _overlap_fit(bench, train, world, local, epochs, x, y):
    """One SPMD fit under ``train``; per-rank timing, stats, parameters."""

    def worker(comm):
        hvd.init(comm)
        try:
            model = bench.build_model(seed=1 + comm.rank, train=train)
            opt = hvd.DistributedOptimizer(SGD(lr=0.001), train=train)
            # loss only: metric evaluation is single-thread compute that
            # dilutes the backward window the scheduler hides comm in
            model.compile(opt, "categorical_crossentropy")
            shard = slice(comm.rank * BATCH, (comm.rank + 1) * BATCH)
            fit_kw = dict(batch_size=BATCH, shuffle=False, train=train)
            # warmup epoch: broadcast + scratch/cache warm, untimed
            model.fit(
                x[shard], y[shard], epochs=1,
                callbacks=[hvd.BroadcastGlobalVariablesCallback(0)],
                **fit_kw,
            )
            t0 = time.perf_counter()
            model.fit(x[shard], y[shard], epochs=epochs, **fit_kw)
            fit_s = time.perf_counter() - t0
            stats = model.last_overlap_stats
            return {
                "fit_s": fit_s,
                "params": model.arena.params_flat.copy(),
                "hidden_s": stats.hidden_s if stats is not None else 0.0,
                "comm_s": stats.comm_s if stats is not None else 0.0,
            }
        finally:
            hvd.shutdown()

    return run_spmd(world, worker, local_size=local)


def measure_overlap(full: bool) -> dict:
    """Overlapped vs serialized wait-free-backprop step, same seeds/data.

    Returns the measured speedup (slowest overlapped rank vs slowest
    serialized rank), the aggregate overlap fraction (total hidden comm
    over total comm, across ranks), and whether both runs produced
    bitwise-identical parameters on every rank.
    """
    bench = get_benchmark("nt3", **SMOKE_SHAPE)
    world = OVERLAP_WORLD if full else 4
    local = OVERLAP_LOCAL if full else 2
    epochs = 6 if full else 2
    x, y = _data(bench.features, n=world * BATCH)
    # 12 rank threads GIL-share this core; the default 5 ms switch
    # interval adds ~worlds x 5 ms of wakeup latency to every bucket
    # handoff, so tighten it for the measurement and restore after
    old_switch = sys.getswitchinterval()
    sys.setswitchinterval(0.001)
    try:
        overlapped = _overlap_fit(bench, OVERLAP_TRAIN, world, local, epochs, x, y)
        serialized = _overlap_fit(
            bench, OVERLAP_TRAIN.evolve(overlap=False), world, local, epochs, x, y
        )
    finally:
        sys.setswitchinterval(old_switch)

    over_s = max(r["fit_s"] for r in overlapped)
    serial_s = max(r["fit_s"] for r in serialized)
    comm = sum(r["comm_s"] for r in overlapped)
    hidden = sum(r["hidden_s"] for r in overlapped)
    identical = all(
        np.array_equal(r["params"], overlapped[0]["params"])
        for r in overlapped + serialized
    )
    return {
        "world": world,
        "local_size": local,
        "epochs_timed": epochs,
        "serialized_s": serial_s,
        "overlapped_s": over_s,
        "speedup_vs_serialized": serial_s / over_s,
        "overlap_fraction": hidden / comm if comm > 0 else 0.0,
        "bit_identical_overlap": identical,
    }


def run_bench(full: bool = False, json_path: str | None = None) -> dict:
    shape = FULL_SHAPE if full else SMOKE_SHAPE
    steps = 10 if full else 3
    bench = get_benchmark("nt3", **shape)

    timings = time_train_step(bench, steps)
    alloc_ref = update_alloc_peak(bench, arena=False)
    alloc_fused = update_alloc_peak(bench, arena=True)
    ident_single = check_single_process_identity(bench, steps=max(5, steps))
    ident_dist = check_distributed_identity(bench)
    # the overlap measurement is a wall-clock race on a shared machine;
    # one retry absorbs a noisy trial without hiding a real regression
    overlap = measure_overlap(full)
    if full and (
        overlap["speedup_vs_serialized"] < 1.3
        or overlap["overlap_fraction"] < 0.6
    ):
        retry = measure_overlap(full)
        retry["bit_identical_overlap"] &= overlap["bit_identical_overlap"]
        overlap = retry

    seed_s = timings["seed (f64, per-param)"]
    rows = [
        {
            "config": label,
            "ms_per_step": round(t * 1e3, 2),
            "speedup_vs_seed": round(seed_s / t, 2),
        }
        for label, t in timings.items()
    ]
    print(format_table(rows, title=f"NT3 train step, {bench.features} features, batch {BATCH}"))
    alloc_ratio = alloc_ref / max(alloc_fused, 1)
    print(
        f"update-phase allocation peak: per-param {alloc_ref} B, "
        f"fused {alloc_fused} B ({alloc_ratio:.0f}x lower)"
    )
    print(f"bit-identical (arena vs reference): single={ident_single} spmd={ident_dist}")
    print(
        f"overlap @ world {overlap['world']}: "
        f"{overlap['speedup_vs_serialized']:.2f}x vs serialized, "
        f"fraction {overlap['overlap_fraction']:.2f}, "
        f"identical={overlap['bit_identical_overlap']}"
    )

    result = {
        "features": bench.features,
        "batch": BATCH,
        "steps_timed": steps,
        "ms_per_step": {label: t * 1e3 for label, t in timings.items()},
        "speedup_arena_f32": seed_s / timings["arena f32 (fused)"],
        "update_alloc_peak_bytes": {"per_param": alloc_ref, "fused": alloc_fused},
        "update_alloc_ratio": alloc_ratio,
        "bit_identical_single": ident_single,
        "bit_identical_spmd": ident_dist,
        "overlap": overlap,
        "overlap_fraction": overlap["overlap_fraction"],
        "speedup_vs_serialized": overlap["speedup_vs_serialized"],
        "mode": "full" if full else "smoke",
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {json_path}")

    assert ident_single, "arena training diverged bitwise from the reference path"
    assert ident_dist, "slab allreduce diverged bitwise from the packed path"
    assert overlap["bit_identical_overlap"], (
        "overlapped training diverged bitwise from the serialized step"
    )
    if full:
        speedup = result["speedup_arena_f32"]
        assert speedup >= 2.0, (
            f"arena f32 step only {speedup:.2f}x over the seed path (need >= 2x)"
        )
        assert alloc_ratio >= 5.0, (
            f"update-phase allocations only {alloc_ratio:.1f}x lower (need >= 5x)"
        )
        osp = overlap["speedup_vs_serialized"]
        assert osp >= 1.3, (
            f"overlapped step only {osp:.2f}x over serialized (need >= 1.3x)"
        )
        frac = overlap["overlap_fraction"]
        assert frac >= 0.6, (
            f"only {frac:.2f} of gradient comm hidden behind backward "
            "(need >= 0.6)"
        )
    return result


# -- pytest entry points ----------------------------------------------------

def test_smoke_trainstep_identity(capsys):
    with capsys.disabled():
        print()
        run_bench(full=False)


@pytest.mark.skipif(
    os.environ.get("TRAINSTEP_BENCH_FULL") != "1",
    reason="full train-step bench needs TRAINSTEP_BENCH_FULL=1",
)
def test_full_trainstep_criteria(capsys):
    with capsys.disabled():
        print()
        run_bench(full=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true", help="CI-sized, identity checks only")
    group.add_argument("--full", action="store_true", help="NT3 at 3024 features + speed/alloc asserts")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    args = parser.parse_args(argv)
    run_bench(full=args.full, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
