"""Figure 6: NT3 Summit strong scaling (times + accuracy) — regenerates the paper's rows/series."""


def test_fig6(run_and_print):
    r = run_and_print("fig6")
    assert r.measured["accuracy at 8 epochs/GPU (48 GPUs, b20)"] > 0.9
