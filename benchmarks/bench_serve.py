"""Serving benchmark: dynamic batching, SLO frontier, hot-swap identity.

Four sections, one JSON artifact:

- **batching** — the tentpole claim: dynamic batching vs single-request
  dispatch (``max_batch=1``) at the *same* latency deadline, closed-loop
  demand high enough to fill batches. Throughput is rows/s over the
  serving wall clock; the batched config must also hold its p99 within
  the deadline.
- **frontier** — throughput vs latency under open (Poisson) load at
  increasing offered qps, the curve capacity planning reads, plus the
  :class:`repro.sim.ServeModel` analytic frontier for the same options
  on modeled Summit.
- **traces** — the admission policies under hostile arrival shapes: a
  flash-crowd burst against ``reject`` and ``shed_oldest``, a diurnal
  trace against ``block`` — shed/rejected counts per policy.
- **hot_swap** — a model-version swap mid-run under open load, with
  every response retained: the batch dispatch log is replayed offline
  against reference models of each version and every served prediction
  must be *bitwise identical* to its version's reference output.

Run standalone::

    python benchmarks/bench_serve.py --smoke                  # CI-sized
    python benchmarks/bench_serve.py --full                   # asserts
    python benchmarks/bench_serve.py --smoke --json OUT.json  # artifact

``--full`` additionally asserts the acceptance thresholds: batched
throughput >= 3x single-request at fixed p99 deadline, batched p99
within the deadline, hot-swap bit-identity, and a >= 3x modeled
batching speedup on Summit NT3. Under pytest the smoke path runs as a
test; the full path is opt-in via ``SERVE_BENCH_FULL=1``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.candle import get_benchmark
from repro.cluster.machine import SUMMIT
from repro.nn import Sequential, get_optimizer
from repro.nn.layers import Dense
from repro.nn.serialization import load_weights_dict
from repro.resilience import CheckpointManager
from repro.serve import (
    ClosedWorkload,
    OpenWorkload,
    ServeOptions,
    SwapPlan,
    burst_arrivals,
    diurnal_arrivals,
    install_weights,
    poisson_arrivals,
    request_features,
    serve_workload,
)
from repro.sim import ServeModel

#: serving model geometry: small enough that per-dispatch fixed cost
#: (event loop, RPC, python scatter) dominates row math — the regime
#: where batching pays, and the regime the CANDLE models are in on a
#: real accelerator (the paper's "not compute-intensive" finding)
FEATURES = 32
ROWS_PER_REQUEST = 4

SMOKE = {
    "clients": 8, "requests_per_client": 10,
    "frontier_qps": (50.0, 150.0, 400.0), "frontier_duration_s": 0.8,
    "swap_qps": 120.0, "swap_duration_s": 1.2,
}
FULL = {
    "clients": 8, "requests_per_client": 25,
    "frontier_qps": (25.0, 75.0, 150.0, 300.0, 600.0),
    "frontier_duration_s": 1.5,
    "swap_qps": 150.0, "swap_duration_s": 2.5,
}


def build_model() -> Sequential:
    model = Sequential()
    model.add(Dense(64, activation="relu"))
    model.add(Dense(8))
    model.build((FEATURES,), seed=11)
    return model


def feature_pool(rows: int = 512) -> np.ndarray:
    return np.random.default_rng(3).normal(size=(rows, FEATURES))


def base_options() -> ServeOptions:
    return ServeOptions(
        max_batch=32,
        deadline_ms=300.0,
        queue_depth=512,
        replicas=2,
        worker_depth=2,
    )


# ---------------------------------------------------------------------------
# section 1: dynamic batching vs single-request dispatch
# ---------------------------------------------------------------------------

def run_batching(cfg: dict) -> dict:
    pool = feature_pool()
    ref = build_model()
    weights = {k: v.copy() for k, v in ref.named_parameters().items()}
    workload = ClosedWorkload(
        clients=cfg["clients"],
        requests_per_client=cfg["requests_per_client"],
        rows_per_request=ROWS_PER_REQUEST,
    )
    batched = base_options()
    single = batched.evolve(max_batch=1)

    reports = {}
    for label, opts in (("batched", batched), ("single", single)):
        reports[label] = serve_workload(
            build_model, workload, pool, opts, initial_weights=weights
        )
    b, s = reports["batched"].slo, reports["single"].slo
    return {
        "deadline_ms": batched.deadline_ms,
        "requests": b.requests,
        "batched_rows_per_s": b.rows_per_s,
        "single_rows_per_s": s.rows_per_s,
        "speedup_vs_single": b.rows_per_s / s.rows_per_s if s.rows_per_s else 0.0,
        "batched_p99_ms": b.p99_ms,
        "single_p99_ms": s.p99_ms,
        "batched_meets_p99": b.meets_p99,
        "mean_batch_rows": reports["batched"].mean_batch_rows,
        "single_mean_batch_rows": reports["single"].mean_batch_rows,
    }


# ---------------------------------------------------------------------------
# section 2: throughput-vs-latency frontier (functional + modeled)
# ---------------------------------------------------------------------------

def run_frontier(cfg: dict) -> dict:
    pool = feature_pool()
    ref = build_model()
    weights = {k: v.copy() for k, v in ref.named_parameters().items()}
    opts = base_options()
    rows = []
    for i, qps in enumerate(cfg["frontier_qps"]):
        arrivals = poisson_arrivals(qps, cfg["frontier_duration_s"], seed=20 + i)
        workload = OpenWorkload(arrivals=arrivals, rows_per_request=1)
        report = serve_workload(
            build_model, workload, pool, opts, initial_weights=weights
        )
        slo = report.slo
        rows.append({
            "offered_qps": qps,
            "completed_rps": slo.throughput_rps,
            "p50_ms": slo.p50_ms,
            "p99_ms": slo.p99_ms,
            "mean_batch_rows": report.mean_batch_rows,
        })
    spec = get_benchmark("nt3").spec
    model = ServeModel(SUMMIT)
    sim_opts = ServeOptions(max_batch=64, deadline_ms=1000.0, replicas=2,
                            assemble_fraction=0.2)
    sim_rows = [p.as_dict() for p in model.frontier(spec, sim_opts)]
    return {
        "rows": rows,
        "sim": {
            "machine": "summit",
            "benchmark": spec.name,
            "rows": sim_rows,
            "max_qps_within_deadline": model.max_qps_within(spec, sim_opts),
            "speedup_modeled": model.batching_speedup(spec, sim_opts),
        },
    }


# ---------------------------------------------------------------------------
# section 3: admission policies under burst / diurnal traces
# ---------------------------------------------------------------------------

def run_traces(cfg: dict) -> dict:
    pool = feature_pool()
    ref = build_model()
    weights = {k: v.copy() for k, v in ref.named_parameters().items()}
    duration = cfg["frontier_duration_s"]
    burst = burst_arrivals(
        base_qps=60.0, duration_s=duration, burst_qps=600.0,
        burst_start_s=duration * 0.3, burst_len_s=duration * 0.2, seed=7,
    )
    diurnal = diurnal_arrivals(
        base_qps=80.0, duration_s=duration, amplitude=0.6, seed=9
    )
    # a deliberately shallow queue so the burst actually hits the policy
    tight = base_options().evolve(queue_depth=16)
    out = {}
    for label, admission, arrivals in (
        ("burst_reject", "reject", burst),
        ("burst_shed", "shed_oldest", burst),
        ("diurnal_block", "block", diurnal),
    ):
        workload = OpenWorkload(arrivals=arrivals, rows_per_request=1)
        report = serve_workload(
            build_model, workload, pool, tight.evolve(admission=admission),
            initial_weights=weights,
        )
        slo = report.slo
        out[label] = {
            "arrivals": int(len(arrivals)),
            "completed": slo.requests,
            "rejected": slo.rejected,
            "shed": slo.shed,
            "p99_ms": slo.p99_ms,
        }
    # conservation: every arrival is answered exactly once
    for label, row in out.items():
        assert row["completed"] + row["rejected"] + row["shed"] == row["arrivals"], (
            label, row,
        )
    return out


# ---------------------------------------------------------------------------
# section 4: hot-swap under load, bitwise identity per version
# ---------------------------------------------------------------------------

def run_hot_swap(cfg: dict) -> dict:
    pool = feature_pool()
    ref = build_model()
    ref.compile(get_optimizer("sgd", lr=0.01), "mse")
    w0 = {k: v.copy() for k, v in ref.named_parameters().items()}
    rng = np.random.default_rng(17)
    perturbed = {k: v + rng.normal(scale=0.1, size=v.shape) for k, v in w0.items()}

    # the v1 weights travel the real resilience path: checkpointed to
    # disk, resolved by epoch with digest verification, read back
    # model-free — exactly what a production swap would ship
    with tempfile.TemporaryDirectory() as ckpt_dir:
        manager = CheckpointManager(ckpt_dir, keep_last=2)
        install_weights(ref, perturbed)
        manager.save(ref, epoch=1)
        info = manager.resolve(epoch=1)
        w1, meta = load_weights_dict(info.path, expected_sha256=info.sha256)
    assert meta["epoch"] == 1
    assert all(np.array_equal(w1[k], perturbed[k]) for k in perturbed)

    arrivals = poisson_arrivals(cfg["swap_qps"], cfg["swap_duration_s"], seed=31)
    workload = OpenWorkload(arrivals=arrivals, rows_per_request=2)
    report = serve_workload(
        build_model,
        workload,
        pool,
        base_options(),
        initial_weights=w0,
        swaps=[SwapPlan(version="v1", weights=w1, after_requests=len(arrivals) // 3)],
        keep_responses=True,
    )
    # offline replay: rebuild every dispatched batch bit-for-bit and
    # compare each served prediction against its version's reference
    versions = {"v0": w0, "v1": w1}
    identical = True
    checked = 0
    for version, req_ids in report.batch_log:
        install_weights(ref, versions[version])
        feats = np.concatenate(
            [request_features(pool, rid, 2) for rid in req_ids], axis=0
        )
        expected = ref._forward(feats, training=False)
        start = 0
        for rid in req_ids:
            got_version, got = report.responses[rid]
            if got_version != version or not np.array_equal(
                got, expected[start : start + 2]
            ):
                identical = False
            checked += 1
            start += 2
    per_version = {
        v: sum(1 for ver, _ in report.responses.values() if ver == v)
        for v in versions
    }
    return {
        "bit_identical": identical,
        "swaps": report.swaps,
        "versions": report.versions,
        "responses_checked": checked,
        "responses_per_version": per_version,
        "p99_ms": report.slo.p99_ms,
        "served_during_both_versions": all(n > 0 for n in per_version.values()),
    }


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def assert_full_criteria(report: dict) -> None:
    b = report["batching"]
    assert b["speedup_vs_single"] >= 3.0, (
        f"dynamic batching speedup {b['speedup_vs_single']:.2f} < 3.0"
    )
    assert b["batched_meets_p99"], (
        f"batched p99 {b['batched_p99_ms']:.1f}ms blows the "
        f"{b['deadline_ms']}ms deadline"
    )
    assert report["hot_swap"]["bit_identical"]
    assert report["hot_swap"]["served_during_both_versions"]
    assert report["frontier"]["sim"]["speedup_modeled"] >= 3.0


def run_bench(full: bool = False, json_path: str | None = None) -> dict:
    cfg = FULL if full else SMOKE
    report = {
        "mode": "full" if full else "smoke",
        "batching": run_batching(cfg),
        "frontier": run_frontier(cfg),
        "traces": run_traces(cfg),
        "hot_swap": run_hot_swap(cfg),
    }
    report["slo"] = {
        "p50_ms": report["frontier"]["rows"][0]["p50_ms"],
        "p99_ms": report["frontier"]["rows"][0]["p99_ms"],
        "throughput_rps": report["frontier"]["rows"][0]["completed_rps"],
    }

    b = report["batching"]
    print(format_table(report["frontier"]["rows"], title="frontier: open load sweep"))
    print(format_table(
        [{"policy": k, **v} for k, v in report["traces"].items()],
        title="traces: admission under burst/diurnal",
    ))
    print(
        f"batching headline: {b['speedup_vs_single']:.2f}x rows/s vs "
        f"single-request at a fixed {b['deadline_ms']:.0f}ms deadline "
        f"(batched p99 {b['batched_p99_ms']:.1f}ms, "
        f"mean batch {b['mean_batch_rows']:.1f} rows)"
    )
    hs = report["hot_swap"]
    print(
        f"hot-swap headline: {hs['swaps']} swap(s), "
        f"{hs['responses_checked']} responses replayed, "
        f"bit_identical={hs['bit_identical']}, "
        f"per-version={hs['responses_per_version']}"
    )
    sim = report["frontier"]["sim"]
    print(
        f"modeled (summit/nt3): max {sim['max_qps_within_deadline']:.0f} qps "
        f"within deadline, batching speedup {sim['speedup_modeled']:.1f}x"
    )

    assert report["hot_swap"]["bit_identical"], report["hot_swap"]
    assert b["speedup_vs_single"] >= 1.5, b
    if full:
        assert_full_criteria(report)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(report, fh, indent=2, default=_json_scalar)
        print(f"wrote {json_path}")
    return report


def _json_scalar(value):
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"Object of type {type(value).__name__} is not JSON serializable")


# -- pytest entry points ----------------------------------------------------

def test_smoke_serve_invariants(capsys):
    with capsys.disabled():
        print()
        run_bench(full=False)


@pytest.mark.skipif(
    os.environ.get("SERVE_BENCH_FULL") != "1",
    reason="full serve bench needs SERVE_BENCH_FULL=1",
)
def test_full_serve_criteria(capsys):
    with capsys.disabled():
        print()
        run_bench(full=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true", help="CI-sized load, invariant checks only")
    group.add_argument("--full", action="store_true", help="longer load + acceptance asserts")
    parser.add_argument("--json", metavar="PATH", help="write the report as JSON")
    args = parser.parse_args(argv)
    run_bench(full=args.full, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
