"""Extension: P2/P3 benchmarks through the same parallel methodology."""


def test_p2p3_extension(run_and_print):
    r = run_and_print("p2p3_extension")
    for key, want in r.paper_claims.items():
        assert r.measured[key] == want, (key, r.measured[key])
