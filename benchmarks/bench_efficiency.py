"""Extension: parallel speedup/efficiency of the training phase."""


def test_efficiency(run_and_print):
    r = run_and_print("efficiency")
    for key, want in r.paper_claims.items():
        assert r.measured[key] == want, (key, r.measured[key])
