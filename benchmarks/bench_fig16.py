"""Figure 16: P1B2 Summit improvement — regenerates the paper's rows/series."""


def test_fig16(run_and_print):
    r = run_and_print("fig16")
    assert 50 < r.measured["max perf improvement %"] < 72
