"""Table 3: data loading by method, Summit — regenerates the paper's rows/series."""


def test_table3(run_and_print):
    r = run_and_print("table3")
    assert 4 < r.measured["NT3 speedup"] < 8
