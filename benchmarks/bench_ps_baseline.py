"""Baseline: parameter server vs Horovod ring allreduce."""


def test_ps_baseline(run_and_print):
    r = run_and_print("ps_baseline")
    for key, want in r.paper_claims.items():
        assert r.measured[key] == want, (key, r.measured[key])
