"""Figure 9: P1B2 Summit strong scaling — regenerates the paper's rows/series."""


def test_fig9(run_and_print):
    r = run_and_print("fig9")
    assert r.measured["accuracy drops at >=96 GPUs"] == 1.0
