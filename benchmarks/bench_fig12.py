"""Figure 12: broadcast overhead reduction (384 GPUs) — regenerates the paper's rows/series."""


def test_fig12(run_and_print):
    r = run_and_print("fig12")
    assert r.measured["overhead improvement %"] > 70
