"""Ablation: collectives — mechanism probe beyond the paper's evaluation."""


def test_ablation_collectives(run_and_print):
    r = run_and_print("ablation_collectives")
    for key, want in r.paper_claims.items():
        assert r.measured[key] == want, (key, r.measured[key])
