"""Microbenchmark: what fault tolerance costs, and what it buys.

Two measurements on a simulated two-node pair (12 ranks, 6 per node —
the paper's smallest multi-node configuration):

- **Fault-free overhead** — the same hierarchical allreduce alternated
  call-by-call through the PR 5
  :class:`~repro.comms.engine.CollectiveEngine` (raw communicator) and
  the :class:`~repro.comms.ft.engine.FaultTolerantEngine` (heartbeats +
  sequenced envelopes + completion fence), barrier-synchronized so the
  paired per-call ratio cancels host noise. The full mode asserts the
  FT path stays within **5%** per call; the numerics must be
  bit-identical either way.
- **Recovery latency** — a rank is killed mid-collective; the
  survivors detect, rebuild, and re-execute. The measured recovery
  time is compared against the checkpoint-restore path it replaces
  (modeled scheduler restart + NT3 checkpoint restore on SUMMIT), and
  the survivors' result is asserted bitwise identical to a fresh flat
  allreduce over the surviving inputs.

Run standalone::

    python benchmarks/bench_ft_comms.py --smoke   # CI-sized, report only
    python benchmarks/bench_ft_comms.py --full    # asserts the 5% gate
    python benchmarks/bench_ft_comms.py --smoke --json BENCH_ft_comms.json

Under pytest the smoke path always runs; the full path is opt-in via
``FT_COMMS_BENCH_FULL=1``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.candle.nt3 import NT3_SPEC
from repro.cluster.machine import SUMMIT
from repro.comms import CollectiveEngine, CollectiveOptions
from repro.comms.ft import FaultToleranceOptions
from repro.comms.ft.engine import FaultTolerantEngine
from repro.mpi import run_spmd
from repro.mpi.communicator import canonical_reduce
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.sim.faultmodel import FailureModel, checkpoint_write_seconds

#: the paper's smallest multi-node shape: 2 nodes x 6 GPUs
WORLD, LOCAL = 12, 6

MAX_OVERHEAD = 0.05  # FT fault-free cost budget vs the PR 5 engine

#: iters = raw/FT pairs per SPMD run; repeats = runs whose pairs pool
SMOKE = dict(elements=64 * 1024, iters=6, repeats=2)     # 512 KB / rank
#: full mode reduces a 16 MB fused-gradient bucket — the scale the FT
#: layer protects in training (Horovod's default fusion buffer is
#: 64 MB; NT3's full gradient is ~620 MB/rank); per-message bookkeeping
#: amortizes against real payload work here, where at toy sizes it
#: would dominate the measurement
FULL = dict(elements=2 * 1024 * 1024, iters=10, repeats=3)  # 16 MB / rank

#: the production defaults are what the overhead gate is about
FTO = FaultToleranceOptions()

#: fast detection so the kill benchmark measures recovery, not timeouts
FTO_RECOVERY = FaultToleranceOptions(
    heartbeat_interval_s=0.005,
    chunk_deadline_s=0.1,
    retry_base_delay_s=0.001,
)


def _input(rank: int, elements: int) -> np.ndarray:
    return np.random.default_rng(900 + rank).standard_normal(elements)


def _paired_run(elements: int, iters: int):
    """One SPMD run alternating raw/FT allreduces, barrier-synchronized.

    Pairing measures both engines under the same host conditions
    (scheduler phase, caches, background load), and the barrier before
    each timed call stops either engine's inter-rank skew from being
    billed to the other. Returns the per-pair slowest-rank times
    ``(raw_s, ft_s)`` lists; numerics are asserted bit-identical.
    """
    opts = CollectiveOptions(algorithm="hierarchical", fault_tolerance=FTO)

    def worker(comm):
        raw = CollectiveEngine(comm, opts)
        ft = FaultTolerantEngine(comm, opts)
        data = _input(comm.rank, elements)
        out_r = raw.allreduce(data, name="warm_raw")  # warm paths/threads
        out_f = ft.allreduce(data, name="warm_ft")
        raws, fts = [], []
        for i in range(iters):
            comm.barrier()
            t0 = time.perf_counter()
            out_r = raw.allreduce(data, name=f"r{i}")
            raws.append(time.perf_counter() - t0)
            comm.barrier()
            t0 = time.perf_counter()
            out_f = ft.allreduce(data, name=f"f{i}")
            fts.append(time.perf_counter() - t0)
        ft.close()
        return raws, fts, out_r, out_f

    expect = canonical_reduce(
        [_input(r, elements) for r in range(WORLD)], "mean"
    )
    results = run_spmd(WORLD, worker, local_size=LOCAL)
    for raws, fts, out_r, out_f in results:
        assert np.array_equal(out_r, expect), "raw allreduce numerics drifted"
        assert np.array_equal(out_f, expect), "FT allreduce numerics drifted"
    raw_s = [max(res[0][i] for res in results) for i in range(len(results[0][0]))]
    ft_s = [max(res[1][i] for res in results) for i in range(len(results[0][1]))]
    return raw_s, ft_s


def measure_overhead(shape: dict) -> dict:
    # pool the per-pair ratios across runs; the median of the pooled
    # paired ratios is robust to the +-10% per-call scheduler noise an
    # oversubscribed single host shows in any unpaired design
    raws, fts = [], []
    for _ in range(shape["repeats"]):
        r, f = _paired_run(shape["elements"], shape["iters"])
        raws.extend(r)
        fts.extend(f)
    ratios = np.array(fts) / np.array(raws)
    return {
        "raw_ms_per_call": float(np.median(raws)) * 1e3,
        "ft_ms_per_call": float(np.median(fts)) * 1e3,
        "pairs": len(ratios),
        "overhead_fraction": float(np.median(ratios)) - 1.0,
    }


def measure_recovery(shape: dict) -> dict:
    """Kill a rank mid-collective; time detection + rebuild + redo."""
    opts = CollectiveOptions(
        algorithm="hierarchical", fault_tolerance=FTO_RECOVERY
    )
    victim = 7
    plan = FaultPlan.single_message_fault("rank_kill", rank=victim, message=1)
    collect = {}

    def worker(comm):
        engine = FaultTolerantEngine(comm, opts)
        data = _input(comm.rank, shape["elements"])
        try:
            out = engine.allreduce(data, name="g")
        finally:
            engine.close()
        collect[comm.rank] = (out, engine.last_recovery, engine.rebuilds)
        return comm.rank

    results = run_spmd(
        WORLD, worker, local_size=LOCAL, fault_injector=FaultInjector(plan)
    )
    assert results[victim] is None
    survivors = [r for r in range(WORLD) if r != victim]
    expect = canonical_reduce(
        [_input(r, shape["elements"]) for r in survivors], "mean"
    )
    recoveries, rebuild_s = [], []
    for rank in survivors:
        out, recovery, rebuilds = collect[rank]
        assert np.array_equal(out, expect), (
            "survivor result differs from flat allreduce over survivors"
        )
        assert recovery is not None and len(rebuilds) == 1
        recoveries.append(recovery["recovery_s"])
        rebuild_s.append(rebuilds[0].elapsed_s)
    # the path this replaces: scheduler restart + checkpoint restore
    fm = FailureModel(mtbf_rank_s=7 * 24 * 3600.0)
    restore_s = fm.restart_s + checkpoint_write_seconds(NT3_SPEC, SUMMIT)
    return {
        "recovery_s_max": max(recoveries),
        "recovery_s_median": float(np.median(recoveries)),
        "rebuild_s_median": float(np.median(rebuild_s)),
        "checkpoint_restore_s": restore_s,
        "speedup_vs_restore": restore_s / max(recoveries),
    }


def run_bench(full: bool = False, json_path: str | None = None) -> dict:
    shape = FULL if full else SMOKE
    overhead = measure_overhead(shape)
    recovery = measure_recovery(shape)

    rows = [
        {"engine": "CollectiveEngine (PR 5)",
         "ms_per_allreduce": round(overhead["raw_ms_per_call"], 3)},
        {"engine": "FaultTolerantEngine",
         "ms_per_allreduce": round(overhead["ft_ms_per_call"], 3)},
    ]
    print(format_table(
        rows,
        title=(f"hierarchical allreduce, {WORLD} ranks ({LOCAL}/node), "
               f"{shape['elements'] * 8 // 1024} KB/rank"),
    ))
    print(f"fault-free FT overhead: {overhead['overhead_fraction'] * 100:+.2f}% "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    print(f"mid-collective rank kill: detected+rebuilt+redone in "
          f"{recovery['recovery_s_max'] * 1e3:.1f} ms "
          f"(rebuild consensus {recovery['rebuild_s_median'] * 1e3:.1f} ms); "
          f"checkpoint-restore path: {recovery['checkpoint_restore_s']:.1f} s "
          f"({recovery['speedup_vs_restore']:.0f}x slower)")

    result = {
        "world": WORLD,
        "local_size": LOCAL,
        "elements": shape["elements"],
        "iters": shape["iters"],
        "repeats": shape["repeats"],
        "overhead_budget": MAX_OVERHEAD,
        "mode": "full" if full else "smoke",
        **overhead,
        **recovery,
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {json_path}")

    assert result["recovery_s_max"] < result["checkpoint_restore_s"], (
        "elastic recovery slower than the checkpoint-restore it replaces"
    )
    if full:
        assert result["overhead_fraction"] < MAX_OVERHEAD, (
            f"FT adds {result['overhead_fraction'] * 100:.2f}% per allreduce "
            f"(budget {MAX_OVERHEAD * 100:.0f}%)"
        )
    return result


# -- pytest entry points ----------------------------------------------------

def test_smoke_ft_comms(capsys):
    with capsys.disabled():
        print()
        result = run_bench(full=False)
    assert result["recovery_s_max"] < result["checkpoint_restore_s"]


@pytest.mark.skipif(
    os.environ.get("FT_COMMS_BENCH_FULL") != "1",
    reason="full FT comms bench needs FT_COMMS_BENCH_FULL=1",
)
def test_full_ft_comms(capsys):
    with capsys.disabled():
        print()
        run_bench(full=True)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true", help="CI-sized run")
    group.add_argument("--full", action="store_true", help="assert the 5%% gate")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    ns = parser.parse_args()
    try:
        run_bench(full=ns.full, json_path=ns.json)
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        sys.exit(1)
