"""Figure 15: P1B1 Theta improvement — regenerates the paper's rows/series."""


def test_fig15(run_and_print):
    r = run_and_print("fig15")
    assert 35 < r.measured["max perf improvement %"] < 55
