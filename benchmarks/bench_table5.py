"""Table 5: NT3 power and energy — regenerates the paper's rows/series."""


def test_table5(run_and_print):
    r = run_and_print("table5")
    assert r.measured["max power increase %"] > 40
