"""Ablation: overlap — Horovod's communication/computation interleaving."""


def test_ablation_overlap(run_and_print):
    r = run_and_print("ablation_overlap")
    for key, want in r.paper_claims.items():
        assert r.measured[key] == want, (key, r.measured[key])
