"""Table 4: data loading by method, Theta — regenerates the paper's rows/series."""


def test_table4(run_and_print):
    r = run_and_print("table4")
    assert 3 < r.measured["NT3 speedup"] < 6
