"""Table 2: NT3 time/epoch and GPU power — regenerates the paper's rows/series."""


def test_table2(run_and_print):
    r = run_and_print("table2")
    assert abs(r.measured["time/epoch 1 GPU (s)"] - 10.3) < 1.5
    assert r.measured["batch 50 OOM"] == 1.0
