"""Ablation: nccl — mechanism probe beyond the paper's evaluation."""


def test_ablation_nccl(run_and_print):
    r = run_and_print("ablation_nccl")
    for key, want in r.paper_claims.items():
        assert r.measured[key] == want, (key, r.measured[key])
