"""Figure 20: P1B1 weak scaling — regenerates the paper's rows/series."""


def test_fig20(run_and_print):
    r = run_and_print("fig20")
    assert 60 < r.measured["min perf improvement %"] < 80
