"""Microbenchmark: tracer overhead on an NT3-shaped training run.

Times ``train_on_batch`` on the NT3 conv stack twice — untraced, then
with every step wrapped in a :class:`repro.telemetry.Tracer` span plus a
step counter (the instrumentation density the wired pipeline actually
uses) — and reports the relative overhead. The telemetry subsystem is
an observability layer for a performance study; it must not perturb the
quantity it measures, so the full mode asserts the traced step stays
within **2%** of the untraced step.

Also reported:

- **span cost** — nanoseconds per open/close of an empty span, the
  primitive everything else is built from;
- **export cost** — seconds to serialize the run's spans to a Chrome
  trace (off the hot path, for scale only).

A real traced NT3 run (load/train/eval through
:func:`repro.candle.pipeline.run_benchmark`) is exported as a sample
artifact set via ``--trace-dir`` so CI can publish a Chrome trace next
to the numbers.

Run standalone::

    python benchmarks/bench_telemetry.py --smoke    # CI-sized, report only
    python benchmarks/bench_telemetry.py --full     # asserts overhead < 2%
    python benchmarks/bench_telemetry.py --smoke --json BENCH_telemetry.json \
        --trace-dir trace_artifacts

Under pytest the smoke path always runs; the full path is opt-in via
``TELEMETRY_BENCH_FULL=1``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.candle import get_benchmark
from repro.candle.pipeline import run_benchmark
from repro.telemetry import Tracer, export_run, profile_from_spans

#: NT3 geometry at two sizes (features = 60483 * scale)
SMOKE_SHAPE = dict(scale=0.01, sample_scale=0.05)   # 604 features
FULL_SHAPE = dict(scale=0.05, sample_scale=0.05)    # 3024 features

BATCH = 20  # NT3's Table-1 batch size

MAX_OVERHEAD = 0.02  # traced step must stay within 2% of untraced

#: modeled per-phase draw (W) for the sample artifact's energy columns
PHASE_POWER_W = {"load": 60.0, "train": 250.0, "eval": 200.0}


def _data(features: int, n: int = BATCH, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, features, 1))
    y = np.eye(2)[rng.integers(0, 2, size=n)]
    return x, y


def _compiled(bench, seed: int = 1):
    model = bench.build_model(seed=seed)
    model.compile("sgd", "categorical_crossentropy", lr=0.001)
    return model


def time_steps(bench, steps: int, repeats: int, tracer: Tracer | None):
    """Median seconds per ``train_on_batch`` across ``repeats`` passes.

    With a tracer, each step runs inside a span carrying a step attr and
    bumps a counter — matching the per-op density of the wired hvd path.
    """
    model = _compiled(bench)
    x, y = _data(bench.features)
    for _ in range(2):
        model.train_on_batch(x, y)  # warm caches and scratch buffers
    per_pass = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        if tracer is None:
            for _ in range(steps):
                model.train_on_batch(x, y)
        else:
            for i in range(steps):
                with tracer.span("train_step", category="train", step=i):
                    model.train_on_batch(x, y)
                tracer.counter("steps")
        per_pass.append((time.perf_counter() - t0) / steps)
    return float(np.median(per_pass))


def span_cost_ns(n: int = 20_000) -> float:
    """Nanoseconds per open/close of an empty span."""
    tracer = Tracer(run_id="span-cost")
    t0 = time.perf_counter()
    for _ in range(n):
        with tracer.span("empty"):
            pass
    return (time.perf_counter() - t0) / n * 1e9


def export_sample_run(trace_dir: str) -> dict:
    """Run a traced NT3 pipeline and export the artifact set."""
    bench = get_benchmark("nt3", **SMOKE_SHAPE)
    report = run_benchmark(bench, epochs=1, seed=0, validation=False)
    tracer = report.tracer
    profile = profile_from_spans(tracer, PHASE_POWER_W, rank=0)
    tracer.bind_power(profile, mode="exact")
    arts = export_run(tracer, trace_dir, prefix="nt3")
    return {
        "chrome_trace": arts.chrome_trace,
        "metrics_jsonl": arts.metrics_jsonl,
        "summary_txt": arts.summary_txt,
        "spans": len(tracer),
        "energy_j": round(profile.exact_energy_j(), 3),
    }


def run_bench(full: bool = False, json_path: str | None = None,
              trace_dir: str | None = None) -> dict:
    shape = FULL_SHAPE if full else SMOKE_SHAPE
    steps = 20 if full else 4
    repeats = 5 if full else 3
    bench = get_benchmark("nt3", **shape)

    untraced_s = time_steps(bench, steps, repeats, tracer=None)
    tracer = Tracer(run_id="overhead")
    traced_s = time_steps(bench, steps, repeats, tracer=tracer)
    overhead = traced_s / untraced_s - 1.0
    cost_ns = span_cost_ns()

    t0 = time.perf_counter()
    from repro.telemetry import to_chrome_trace

    to_chrome_trace(tracer)
    export_s = time.perf_counter() - t0

    rows = [
        {"config": "untraced", "ms_per_step": round(untraced_s * 1e3, 3)},
        {"config": "traced (span + counter)", "ms_per_step": round(traced_s * 1e3, 3)},
    ]
    print(format_table(rows, title=f"NT3 train step, {bench.features} features, batch {BATCH}"))
    print(f"tracer overhead: {overhead * 100:+.3f}% of step time "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    print(f"span open/close: {cost_ns:.0f} ns; chrome export of "
          f"{len(tracer)} spans: {export_s * 1e3:.2f} ms")

    result = {
        "features": bench.features,
        "batch": BATCH,
        "steps_timed": steps,
        "repeats": repeats,
        "untraced_ms_per_step": untraced_s * 1e3,
        "traced_ms_per_step": traced_s * 1e3,
        "overhead_fraction": overhead,
        "overhead_budget": MAX_OVERHEAD,
        "span_cost_ns": cost_ns,
        "chrome_export_s": export_s,
        "mode": "full" if full else "smoke",
    }
    if trace_dir:
        result["sample_artifacts"] = export_sample_run(trace_dir)
        print(f"sample trace artifacts in {trace_dir}")
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {json_path}")

    if full:
        assert overhead < MAX_OVERHEAD, (
            f"tracing adds {overhead * 100:.2f}% per step "
            f"(budget {MAX_OVERHEAD * 100:.0f}%)"
        )
    return result


# -- pytest entry points ----------------------------------------------------

def test_smoke_telemetry_overhead(capsys, tmp_path):
    with capsys.disabled():
        print()
        result = run_bench(full=False, trace_dir=str(tmp_path))
    assert result["span_cost_ns"] < 1e6  # a span is not milliseconds
    assert os.path.exists(result["sample_artifacts"]["chrome_trace"])


@pytest.mark.skipif(
    os.environ.get("TELEMETRY_BENCH_FULL") != "1",
    reason="full telemetry bench needs TELEMETRY_BENCH_FULL=1",
)
def test_full_telemetry_overhead(capsys):
    with capsys.disabled():
        print()
        run_bench(full=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true", help="CI-sized, report only")
    group.add_argument("--full", action="store_true", help="NT3 at 3024 features, asserts overhead < 2%")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument("--trace-dir", metavar="DIR",
                        help="export a sample traced-run artifact set here")
    args = parser.parse_args(argv)
    run_bench(full=args.full, json_path=args.json, trace_dir=args.trace_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
