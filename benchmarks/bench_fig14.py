"""Figure 14: P1B1 Summit improvement — regenerates the paper's rows/series."""


def test_fig14(run_and_print):
    r = run_and_print("fig14")
    assert 70 < r.measured["max perf improvement %"] < 85
