"""Figure 18: NT3 weak scaling to 3,072 GPUs — regenerates the paper's rows/series."""


def test_fig18(run_and_print):
    r = run_and_print("fig18")
    assert 30 < r.measured["min perf improvement %"] < 50
