"""CI performance gate: compare BENCH_*.json artifacts against bounds.

``docs/results/gates.json`` declares the floor/ceiling every benchmark
artifact must respect::

    {
      "gates": [
        {"file": "BENCH_ft_comms.json",
         "metric": "overhead_fraction", "max": 0.60},
        {"file": "BENCH_comms.json",
         "metric": "allreduce.speedup_hierarchical_fused_vs_flat",
         "min": 2.0},
        {"file": "BENCH_comms.json",
         "metric": "bit_identical.ring", "equals": true}
      ]
    }

``metric`` is a dotted path into the artifact's JSON; each rule carries
one or more of ``min`` / ``max`` / ``equals``. The gate fails loudly —
missing artifact, missing metric, or out-of-bounds value all exit
non-zero with a per-rule verdict table, so a regression can't slip
through as a silently-skipped check.

Run from the directory holding the artifacts (CI runs it after the
smoke benches)::

    python benchmarks/perf_gate.py
    python benchmarks/perf_gate.py --dir artifacts/ --gates docs/results/gates.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["evaluate", "load_gates", "main"]


def load_gates(path: Path) -> list[dict]:
    """Parse the gate rules; malformed rules are a loud failure too."""
    with open(path) as fh:
        doc = json.load(fh)
    rules = doc.get("gates")
    if not isinstance(rules, list) or not rules:
        raise ValueError(f"{path}: expected a non-empty 'gates' list")
    for rule in rules:
        if "file" not in rule or "metric" not in rule:
            raise ValueError(f"{path}: rule missing file/metric: {rule}")
        if not any(k in rule for k in ("min", "max", "equals")):
            raise ValueError(
                f"{path}: rule has no min/max/equals bound: {rule}"
            )
    return rules


def _dig(doc, dotted: str):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


def evaluate(rules: list[dict], bench_dir: Path) -> list[dict]:
    """One verdict per rule: {rule, value, ok, why}."""
    verdicts = []
    cache: dict[str, dict] = {}
    for rule in rules:
        name = rule["file"]
        verdict = {"rule": rule, "value": None, "ok": False, "why": ""}
        try:
            if name not in cache:
                artifact = bench_dir / name
                if not artifact.is_file():
                    raise FileNotFoundError(
                        f"artifact {artifact} missing — did its bench run?"
                    )
                with open(artifact) as fh:
                    cache[name] = json.load(fh)
            try:
                value = _dig(cache[name], rule["metric"])
            except KeyError:
                raise KeyError(
                    f"{name} has no metric {rule['metric']!r}"
                ) from None
            verdict["value"] = value
            problems = []
            if "equals" in rule and value != rule["equals"]:
                problems.append(f"expected {rule['equals']!r}, got {value!r}")
            if "min" in rule and not value >= rule["min"]:
                problems.append(f"{value} < floor {rule['min']}")
            if "max" in rule and not value <= rule["max"]:
                problems.append(f"{value} > ceiling {rule['max']}")
            verdict["ok"] = not problems
            verdict["why"] = "; ".join(problems) or "ok"
        except (FileNotFoundError, KeyError, json.JSONDecodeError) as exc:
            verdict["why"] = str(exc)
        verdicts.append(verdict)
    return verdicts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir", default=".", help="directory holding BENCH_*.json artifacts"
    )
    parser.add_argument(
        "--gates",
        default=str(Path(__file__).resolve().parent.parent
                    / "docs" / "results" / "gates.json"),
        help="gate rules file",
    )
    ns = parser.parse_args(argv)
    try:
        rules = load_gates(Path(ns.gates))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"perf gate: cannot load rules: {exc}", file=sys.stderr)
        return 2
    verdicts = evaluate(rules, Path(ns.dir))
    width = max(len(v["rule"]["file"]) + len(v["rule"]["metric"]) for v in verdicts)
    failed = 0
    for v in verdicts:
        rule = v["rule"]
        bounds = ", ".join(
            f"{k}={rule[k]}" for k in ("min", "max", "equals") if k in rule
        )
        label = f"{rule['file']}:{rule['metric']}"
        mark = "PASS" if v["ok"] else "FAIL"
        failed += not v["ok"]
        print(f"{mark}  {label:<{width + 1}}  value={v['value']}  [{bounds}]"
              + ("" if v["ok"] else f"  <- {v['why']}"))
    if failed:
        print(f"perf gate: {failed}/{len(verdicts)} rule(s) failed",
              file=sys.stderr)
        return 1
    print(f"perf gate: all {len(verdicts)} rule(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
