"""Microbenchmark: the two CSV engines on a wide-row file.

Unlike the table3/table4 benches (which regenerate the paper's numbers
from the calibrated model), this bench *measures* the real parsing
engines in repro.frame on a generated NT3-shaped file and asserts the
paper's qualitative result: the chunked low_memory=False engine beats
the low_memory=True engine by a solid factor on wide rows.
"""

import numpy as np
import pytest

from repro.candle import get_benchmark
from repro.ingest import DataSource, LoaderConfig


@pytest.fixture(scope="module")
def wide_csv(tmp_path_factory):
    bench = get_benchmark("nt3", scale=0.12, sample_scale=0.04)
    tmp = tmp_path_factory.mktemp("widecsv")
    train, _ = bench.write_files(tmp, rng=np.random.default_rng(0))
    return train


def _load(path, method):
    return DataSource(path).load(LoaderConfig(method=method))


def test_original_engine(benchmark, wide_csv):
    result = benchmark.pedantic(
        _load, args=(wide_csv, "original"), rounds=3, iterations=1
    )
    assert result.rows > 0


def test_chunked_engine(benchmark, wide_csv):
    result = benchmark.pedantic(
        _load, args=(wide_csv, "chunked"), rounds=3, iterations=1
    )
    assert result.rows > 0


def test_wide_row_speedup_is_real(benchmark, wide_csv):
    def compare():
        t_orig = _load(wide_csv, "original").seconds
        t_fast = _load(wide_csv, "chunked").seconds
        return t_orig / t_fast

    speedup = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert speedup > 2.0, f"speedup only {speedup:.2f}x"
