"""Benchmark harness configuration.

Every bench regenerates one paper table/figure via
``repro.experiments.run_experiment`` and prints the rows the paper
reports, so ``pytest benchmarks/ --benchmark-only`` is the full
reproduction run. Heavy experiments (real training) run one round.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.fixture
def run_and_print(benchmark, capsys):
    """Benchmark one experiment (single round) and print its tables."""

    def runner(experiment_id: str, fast: bool = True, **kwargs):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"fast": fast, **kwargs},
            rounds=1,
            iterations=1,
        )
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return runner
