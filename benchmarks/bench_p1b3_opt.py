"""Section 5.4: P1B3 gains little — regenerates the paper's rows/series."""


def test_p1b3_opt(run_and_print):
    r = run_and_print("p1b3_opt")
    assert r.measured["improvement small (< 7%)"] == 1.0
