"""Table 1: benchmark characteristics — regenerates the paper's rows/series."""


def test_table1(run_and_print):
    r = run_and_print("table1")
    assert r.measured["NT3 steps/epoch"] == 56
