"""Figure 21: P1B2 weak scaling — regenerates the paper's rows/series."""


def test_fig21(run_and_print):
    r = run_and_print("fig21")
    assert 35 < r.measured["min perf improvement %"] < 60
