"""Extension: gradient noise scale vs the paper's batch-size decisions."""


def test_noise_scale(run_and_print):
    r = run_and_print("noise_scale")
    for key, want in r.paper_claims.items():
        assert r.measured[key] == want, (key, r.measured[key])
