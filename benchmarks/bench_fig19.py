"""Figure 19: weak-scaling broadcast overhead (768 GPUs) — regenerates the paper's rows/series."""


def test_fig19(run_and_print):
    r = run_and_print("fig19")
    assert r.measured["overhead improvement %"] > 70
