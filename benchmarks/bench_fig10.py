"""Figure 10: P1B3 batch-size scaling strategies — regenerates the paper's rows/series."""


def test_fig10(run_and_print):
    r = run_and_print("fig10")
    assert r.measured["linear fails at 192/384 GPUs"] == 1.0
