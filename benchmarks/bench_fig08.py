"""Figure 8: P1B1 Summit strong scaling — regenerates the paper's rows/series."""


def test_fig8(run_and_print):
    r = run_and_print("fig8")
    assert r.measured["loading dominates from N GPUs"] <= 48
