"""Checkpoint interval vs MTBF at Summit scale — Young/Daly optimum and overheads."""


def test_checkpoint_interval(run_and_print):
    r = run_and_print("checkpoint_interval")
    assert r.measured["analytic makespan minimized at tau_opt (x1.0)"] == 1.0
    assert r.measured["Daly optimum within 5% of numeric argmin"] == 1.0
    assert r.measured["checkpointing at tau_opt beats no checkpoints"] == 1.0
