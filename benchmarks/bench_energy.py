"""Energy-aware runtime benchmark: savings shape, config search, caps, DVFS.

Four sections, one JSON artifact:

- **savings** — the paper's optimized-loading energy story (Tables 4-6 /
  Fig 14 shape) on simulated Theta: original vs cached loading across
  the strong-scaling rank grid up to the paper's 3,072 nodes, where the
  energy saving crests near the paper's ~78%.
- **search** — the ``energy_search`` experiment: sweep ranks x batch
  rule x collective algorithm x DVFS state, report the Pareto frontier
  and the EDP win of the best swept config over the max-frequency
  reference operating point.
- **cap** — the :class:`~repro.sim.powercap.PowerCapScheduler` on
  simulated Summit: a descending series of node budgets, each run
  checked against its cap (the by-construction invariant) and priced
  against its uncapped twin.
- **dvfs** — the frequency ladder itself on Summit: pinned-state runs
  at every rung, bit-identity of the explicit top state against the
  unpinned default, and the EDP of the best rung vs nominal clocks
  (V100's wide dynamic range makes down-clocking genuinely win).

The simulator is deterministic, so smoke and full differ only in grid
size, and every number in the artifact is exactly reproducible.

Run standalone::

    python benchmarks/bench_energy.py --smoke                  # CI-sized
    python benchmarks/bench_energy.py --full                   # asserts
    python benchmarks/bench_energy.py --smoke --json OUT.json  # artifact

``--full`` additionally asserts the acceptance thresholds: the max
energy saving lands in the paper's band (70-85%), the swept best config
beats the max-frequency reference EDP by >= 15%, every capped run stays
under its budget, the explicit top state is bit-identical to the
default, and the best DVFS rung improves Summit EDP. Under pytest the
smoke path runs as a test; the full path is opt-in via
``ENERGY_BENCH_FULL=1``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import pytest

from repro.analysis.report import format_table
from repro.candle import get_benchmark
from repro.cluster.machine import get_machine
from repro.experiments.base import run_experiment
from repro.experiments.common import plan_for
from repro.sim.powercap import PowerCapScheduler
from repro.sim.runner import ScaledRunSimulator

#: strong-scaling Theta grids for the savings section; both reach the
#: paper's full 3,072-node scale where the Lustre story peaks
SMOKE_SAVINGS_COUNTS = (384, 1536, 3072)
FULL_SAVINGS_COUNTS = (96, 192, 384, 768, 1536, 3072)

#: Summit node budgets for the cap section (nominal peak ~1,740 W/node)
SMOKE_CAPS_W = (1800.0, 1000.0)
FULL_CAPS_W = (1800.0, 1400.0, 1000.0, 700.0)

#: Summit strong-scaling point for the cap and dvfs sections
CAP_WORKERS = 96


# ---------------------------------------------------------------------------
# section 1: paper energy-saving shape
# ---------------------------------------------------------------------------

def run_savings(full: bool) -> dict:
    """Original vs cached loading on Theta across the rank grid."""
    from repro.analysis.energy import compare_runs

    counts = FULL_SAVINGS_COUNTS if full else SMOKE_SAVINGS_COUNTS
    spec = get_benchmark("nt3").spec
    sim = ScaledRunSimulator("theta")
    rows = []
    for n in counts:
        plan = plan_for(spec, n, mode="strong")
        orig = sim.run(spec, plan, method="original", seed=0, keep_profiles=False)
        opt = sim.run(spec, plan, method="cached", seed=0, keep_profiles=False)
        rows.append(compare_runs(orig, opt).as_row())
    return {
        "rows": rows,
        "max_energy_saving_pct": max(r["energy_saving_pct"] for r in rows),
        "paper_pct": 78.0,
    }


# ---------------------------------------------------------------------------
# section 2: energy-optimal config search
# ---------------------------------------------------------------------------

def run_search(full: bool) -> dict:
    """The registered ``energy_search`` experiment, smoke = fast grid."""
    result = run_experiment("energy_search", fast=not full)
    frontier_key = next(k for k in result.panels if k.startswith("pareto"))
    return {
        "edp_improvement_pct": result.measured["EDP improvement vs max-frequency %"],
        "max_energy_saving_pct": result.measured[
            "max energy saving % (paper ~78 at scale)"
        ],
        "frontier": result.panels[frontier_key],
        "frontier_size": len(result.panels[frontier_key]),
        "edp_rows": result.panels["EDP vs max-frequency reference"],
        "notes": result.notes,
    }


# ---------------------------------------------------------------------------
# section 3: power capping
# ---------------------------------------------------------------------------

def run_caps(full: bool) -> dict:
    """Descending Summit node budgets through the cap scheduler."""
    caps = FULL_CAPS_W if full else SMOKE_CAPS_W
    spec = get_benchmark("nt3").spec
    plan = plan_for(spec, CAP_WORKERS, mode="strong")
    scheduler = PowerCapScheduler("summit")
    rows = [
        scheduler.run(spec, plan, cap, method="cached", seed=0).as_row()
        for cap in caps
    ]
    return {
        "rows": rows,
        "all_within_cap": all(r["within_cap"] for r in rows),
        "max_slowdown": max(r["slowdown"] for r in rows),
        "max_energy_saving_pct": max(r["energy_saving_pct"] for r in rows),
    }


# ---------------------------------------------------------------------------
# section 4: DVFS ladder
# ---------------------------------------------------------------------------

def run_dvfs(full: bool) -> dict:
    """Every Summit rung at the cap operating point, plus bit identity."""
    spec = get_benchmark("nt3").spec
    plan = plan_for(spec, CAP_WORKERS, mode="strong")
    machine = get_machine("summit")

    default = ScaledRunSimulator(machine).run(
        spec, plan, method="cached", seed=0, keep_profiles=False
    )
    rows = []
    for state in machine.frequency_ladder():
        rep = ScaledRunSimulator(machine, power_state=state).run(
            spec, plan, method="cached", seed=0, keep_profiles=False
        )
        rows.append(
            {
                "state": state.name,
                "freq_ghz": state.frequency_ghz,
                "total_s": round(rep.total_s, 2),
                "energy_mj": round(rep.total_energy_j / 1e6, 3),
                "avg_power_w": round(rep.avg_power_w, 1),
                "edp_gj_s": round(rep.edp_j_s / 1e9, 4),
            }
        )
    top = next(r for r in rows if r["state"] == machine.frequency_ladder().max_state.name)
    nominal_edp = default.edp_j_s / 1e9
    best = min(rows, key=lambda r: r["edp_gj_s"])
    return {
        "rows": rows,
        "bit_identical_max_state": (
            abs(top["total_s"] - round(default.total_s, 2)) == 0.0
            and abs(top["energy_mj"] - round(default.total_energy_j / 1e6, 3)) == 0.0
        ),
        "best_state": best["state"],
        "edp_improvement_pct": round(
            (1.0 - best["edp_gj_s"] / nominal_edp) * 100.0, 2
        ),
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def assert_full_criteria(report: dict) -> None:
    savings = report["savings"]["max_energy_saving_pct"]
    assert 70.0 <= savings <= 85.0, (
        f"max energy saving {savings:.1f}% outside the paper's 70-85% band"
    )
    edp = report["search"]["edp_improvement_pct"]
    assert edp >= 15.0, (
        f"best swept config beats max-frequency EDP by only {edp:.1f}%"
    )
    assert report["cap"]["all_within_cap"], report["cap"]["rows"]
    assert report["dvfs"]["bit_identical_max_state"], report["dvfs"]
    assert report["dvfs"]["edp_improvement_pct"] > 0.0, (
        "no Summit DVFS rung beats nominal EDP"
    )


def run_bench(full: bool = False, json_path: str | None = None) -> dict:
    report = {
        "mode": "full" if full else "smoke",
        "savings": run_savings(full),
        "search": run_search(full),
        "cap": run_caps(full),
        "dvfs": run_dvfs(full),
    }

    print(format_table(
        report["savings"]["rows"],
        title="savings: NT3 on Theta, original vs cached loading",
    ))
    print(
        f"savings headline: {report['savings']['max_energy_saving_pct']:.2f}% "
        f"max (paper ~{report['savings']['paper_pct']:.0f}%)"
    )
    print(format_table(
        report["search"]["edp_rows"], title="search: EDP vs max-frequency reference"
    ))
    print(
        f"search headline: best swept config beats reference EDP by "
        f"{report['search']['edp_improvement_pct']:.1f}% "
        f"(frontier has {report['search']['frontier_size']} points)"
    )
    print(format_table(report["cap"]["rows"], title="cap: Summit node budgets"))
    print(format_table(report["dvfs"]["rows"], title="dvfs: Summit ladder"))
    print(
        f"dvfs headline: {report['dvfs']['best_state']} beats nominal EDP by "
        f"{report['dvfs']['edp_improvement_pct']:.1f}%, "
        f"bit_identical_max_state={report['dvfs']['bit_identical_max_state']}"
    )

    assert report["cap"]["all_within_cap"], report["cap"]["rows"]
    assert report["dvfs"]["bit_identical_max_state"], report["dvfs"]
    if full:
        assert_full_criteria(report)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {json_path}")
    return report


# -- pytest entry points ----------------------------------------------------

def test_smoke_energy_invariants(capsys):
    with capsys.disabled():
        print()
        run_bench(full=False)


@pytest.mark.skipif(
    os.environ.get("ENERGY_BENCH_FULL") != "1",
    reason="full energy bench needs ENERGY_BENCH_FULL=1",
)
def test_full_energy_criteria(capsys):
    with capsys.disabled():
        print()
        run_bench(full=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true", help="CI-sized grids, invariant checks only")
    group.add_argument("--full", action="store_true", help="paper-scale grids + acceptance asserts")
    parser.add_argument("--json", metavar="PATH", help="write the report as JSON")
    args = parser.parse_args(argv)
    run_bench(full=args.full, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
