"""Table 6: NT3 weak scaling accuracy/power — regenerates the paper's rows/series."""


def test_table6(run_and_print):
    r = run_and_print("table6")
    assert r.measured["accuracy ~1.0 at 8 epochs/GPU"] > 0.9
