"""Microbenchmark: the data plane on generated NT3-geometry files.

Four sections, one JSON artifact:

- **modes** — the real parsers behind ``DataSource`` (serial chunked,
  span-parallel, cached miss/hit) on a wide-row NT3-shaped file, with
  bit-identity checks across every mode.
- **parser** — an asv-style matrix over the column-conversion engines:
  converters (sampled reference vs vectorized dispatch) x comments
  (plain vs ``#``-commented) x dtype paths (int64 / float64 / NA-laden
  float) x geometry (wide vs narrow), plus the headline A/B on an
  NT3-geometry file with NA spellings — the case the vectorized
  ladder exists for.
- **prefetch** — NT3 training fed by :class:`repro.ingest.EpochPrefetcher`
  (background epoch loads from the mmap cache) vs the same prefetcher in
  synchronous mode: measures the hidden/waited split and checks the
  trained weights are bit-identical.
- **mmap** — per-rank resident bytes at 6 ranks/node: every rank holding
  the full parsed frame vs zero-copy mmap shard views materialized only
  for the rank's own rows.

Run standalone::

    python benchmarks/bench_ingest.py --smoke                  # CI-sized
    python benchmarks/bench_ingest.py --full                   # asserts
    python benchmarks/bench_ingest.py --smoke --json OUT.json  # artifact

``--full`` additionally asserts the acceptance thresholds: parallel
>= 2x serial chunked and cached hit >= 10x any text parse (modes),
vectorized parser >= 1.5x the reference on the NA-laden NT3 file,
prefetch hides >= 80% of epoch load time, and mmap sharding cuts
per-rank resident bytes >= 4x at 6 ranks. Under pytest the smoke path
runs as a test; the full path is opt-in (needs >1 CPU and the
``INGEST_BENCH_FULL=1`` environment variable).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.candle import get_benchmark
from repro.frame import read_csv, vectorized_parser
from repro.ingest import (
    DataSource,
    EpochPrefetcher,
    LoaderConfig,
    ShardSpec,
    epoch_shard_order,
    load_benchmark_data,
)

#: generated-file geometry: NT3's wide rows at two sizes
SMOKE_SHAPE = dict(scale=0.02, sample_scale=0.1)   # ~0.5 MB
FULL_SHAPE = dict(scale=1.0, sample_scale=0.25)    # >= 100 MB

#: training geometry for the prefetch section (full keeps the model
#: small enough that six epochs finish in tens of seconds — the gate is
#: about the hidden fraction, not the file size)
SMOKE_TRAIN = dict(shape=dict(scale=0.02, sample_scale=0.1), epochs=3)
FULL_TRAIN = dict(shape=dict(scale=0.05, sample_scale=0.5), epochs=6)

#: ranks per node for the residency section (the paper's 6 ranks/node
#: Summit placement)
RESIDENCY_RANKS = 6


def generate_nt3_file(dirpath, shape: dict) -> str:
    bench = get_benchmark("nt3", **shape)
    train, _ = bench.write_files(dirpath, rng=np.random.default_rng(0))
    return str(train)


# ---------------------------------------------------------------------------
# section 1: DataSource modes
# ---------------------------------------------------------------------------

def run_modes(path: str, cache_dir: str) -> list[dict]:
    """Load ``path`` with every benched mode; returns timing/identity rows."""
    modes = [
        ("chunked (serial)", LoaderConfig(method="chunked")),
        ("parallel", LoaderConfig(method="parallel")),
        ("cached (miss)", LoaderConfig(method="cached", cache_dir=cache_dir)),
        ("cached (hit)", LoaderConfig(method="cached", cache_dir=cache_dir)),
    ]
    source = DataSource(path)
    rows, ref = [], None
    for label, config in modes:
        result = source.load(config)
        if ref is None:
            ref = result.frame
        rows.append(
            {
                "mode": label,
                "seconds": round(result.seconds, 3),
                "rows": result.rows,
                "resident_mb": round(result.frame.resident_nbytes() / 1e6, 2),
                "identical": result.frame.equals(ref),
            }
        )
    return rows


def assert_modes_criteria(rows: list[dict]) -> None:
    """The acceptance thresholds for the >= 100 MB file."""
    t = {r["mode"]: r["seconds"] for r in rows}
    assert all(r["identical"] for r in rows), rows
    parallel_speedup = t["chunked (serial)"] / t["parallel"]
    assert parallel_speedup >= 2.0, (
        f"parallel only {parallel_speedup:.2f}x over serial chunked"
    )
    fastest_text = min(t["chunked (serial)"], t["parallel"], t["cached (miss)"])
    cached_speedup = fastest_text / t["cached (hit)"]
    assert cached_speedup >= 10.0, (
        f"cached reload only {cached_speedup:.2f}x over the fastest text parse"
    )


# ---------------------------------------------------------------------------
# section 2: parser matrix
# ---------------------------------------------------------------------------

def _write_cell_csv(path: str, rows: int, cols: int, dtype_path: str,
                    commented: bool, rng: np.random.Generator) -> None:
    """One matrix cell's file: geometry x dtype path x comment lines."""
    if dtype_path == "int":
        toks = np.char.mod("%d", rng.integers(0, 1000, size=(rows, cols)))
    else:
        toks = np.char.mod("%.6g", rng.normal(size=(rows, cols)))
        if dtype_path == "missing":
            # every column sees an NA spelling (so sampled inference and
            # the dispatch ladder both take their missing-value path)
            toks[0, :] = "na"
            mask = rng.random((rows, cols)) < 0.005
            toks = np.where(mask, "na", toks)
    with open(path, "w") as fh:
        for r in range(rows):
            if commented and r % 32 == 0:
                fh.write("# generated comment line\n")
            fh.write(",".join(toks[r]) + "\n")


def _time_parse(path: str, vectorized: bool, comment) -> tuple[float, object]:
    with vectorized_parser(vectorized):
        t0 = time.perf_counter()
        frame = read_csv(path, header=None, low_memory=False, comment=comment)
    return time.perf_counter() - t0, frame


def run_parser_matrix(tmp: str, full: bool) -> dict:
    """The converters x comments x dtype-paths x geometry sweep, plus the
    headline reference-vs-vectorized A/B on the NA-laden NT3 file."""
    if full:
        geometries = {"wide": (200, 8000), "narrow": (100_000, 12)}
    else:
        geometries = {"wide": (24, 800), "narrow": (2000, 8)}
    rng = np.random.default_rng(7)
    matrix, identical = [], True
    for geom, (rows, cols) in geometries.items():
        for dtype_path in ("int", "float", "missing"):
            for commented in (False, True):
                path = os.path.join(
                    tmp, f"cell_{geom}_{dtype_path}_{int(commented)}.csv"
                )
                _write_cell_csv(path, rows, cols, dtype_path, commented, rng)
                comment = "#" if commented else None
                t_ref, ref = _time_parse(path, vectorized=False, comment=comment)
                t_vec, vec = _time_parse(path, vectorized=True, comment=comment)
                same = vec.equals(ref)
                identical = identical and same
                matrix.append(
                    {
                        "geometry": geom,
                        "dtype_path": dtype_path,
                        "comments": commented,
                        "ref_s": round(t_ref, 4),
                        "vec_s": round(t_vec, 4),
                        "speedup": round(t_ref / max(t_vec, 1e-9), 2),
                        "identical": same,
                    }
                )

    # headline: NT3 geometry with NA spellings — the sparse-NaN genomics
    # column case the vectorized ladder targets
    shape = FULL_SHAPE if full else SMOKE_SHAPE
    bench = get_benchmark("nt3", **shape)
    spec = bench.spec
    rows = max(8, int(spec.train_samples * shape["sample_scale"]))
    cols = bench.csv_cols if hasattr(bench, "csv_cols") else None
    if cols is None:
        cols = max(2, int(spec.elements_per_sample * shape["scale"])) + 1
    nt3_path = os.path.join(tmp, "nt3_missing.csv")
    _write_cell_csv(nt3_path, rows, cols, "missing", False, rng)
    t_ref, ref = _time_parse(nt3_path, vectorized=False, comment=None)
    t_vec, vec = _time_parse(nt3_path, vectorized=True, comment=None)
    nt3_same = vec.equals(ref)
    identical = identical and nt3_same
    return {
        "matrix": matrix,
        "identical": identical,
        "nt3_rows": rows,
        "nt3_cols": cols,
        "nt3_ref_s": round(t_ref, 4),
        "nt3_vec_s": round(t_vec, 4),
        "nt3_speedup": round(t_ref / max(t_vec, 1e-9), 2),
    }


# ---------------------------------------------------------------------------
# section 3: epoch prefetch
# ---------------------------------------------------------------------------

def _nt3_trainer(tmp: str, train: dict):
    """(benchmark, epoch loader, epochs): NT3 training fed from the
    mmap cache with the epoch's shard-shuffled gather as the load work."""
    bench = get_benchmark("nt3", **train["shape"])
    train_csv, test_csv = bench.write_files(tmp, rng=np.random.default_rng(0))
    cache = LoaderConfig(method="cached", cache_dir=os.path.join(tmp, "pf-cache"))
    # warm the cache; from here on every epoch load is an mmap re-read
    data = load_benchmark_data(bench, train_csv, test_csv, method=cache)
    seed = 11

    def load(epoch: int):
        d = load_benchmark_data(bench, train_csv, test_csv, method=cache)
        order = epoch_shard_order(len(d.x_train), 16, seed, epoch)
        return d.x_train[order], d.y_train[order]

    return bench, data, load, train["epochs"]


def _fit_once(bench, prefetcher, batch_size: int = 20):
    from repro.nn import get_optimizer

    model = bench.build_model(seed=0)
    model.compile(get_optimizer(bench.spec.optimizer), "categorical_crossentropy")
    model.fit(prefetcher, batch_size=batch_size)
    return model


def run_prefetch(tmp: str, full: bool) -> dict:
    train = FULL_TRAIN if full else SMOKE_TRAIN
    bench, data, load, epochs = _nt3_trainer(tmp, train)

    t0 = time.perf_counter()
    model = _fit_once(bench, EpochPrefetcher(load, epochs, depth=2))
    overlapped_s = time.perf_counter() - t0
    stats = model.last_prefetch_stats

    t0 = time.perf_counter()
    sync_model = _fit_once(bench, EpochPrefetcher(load, epochs, synchronous=True))
    sync_s = time.perf_counter() - t0
    sync_stats = sync_model.last_prefetch_stats

    bit_identical = all(
        np.array_equal(a, b)
        for a, b in zip(model.get_weights(), sync_model.get_weights())
    )
    return {
        "epochs": epochs,
        "train_rows": len(data.x_train),
        "load_s": round(stats.load_s, 4),
        "hidden_s": round(stats.hidden_s, 4),
        "wait_s": round(stats.wait_s, 4),
        "hidden_fraction": round(stats.hidden_fraction, 4),
        "overlapped_wall_s": round(overlapped_s, 3),
        "synchronous_wall_s": round(sync_s, 3),
        "synchronous_load_s": round(sync_stats.load_s, 4),
        "bit_identical": bit_identical,
    }


# ---------------------------------------------------------------------------
# section 4: mmap residency
# ---------------------------------------------------------------------------

def run_residency(path: str, cache_dir: str) -> dict:
    """Per-rank resident bytes: full frame per rank vs mmap shard views."""
    # baseline: what every rank holds when each parses the whole file
    baseline = DataSource(path).load(LoaderConfig(method="chunked")).frame
    baseline_bytes = baseline.resident_nbytes()

    view_bytes, rank_bytes, shard_rows = 0, [], 0
    for rank in range(RESIDENCY_RANKS):
        cfg = LoaderConfig(
            method="cached",
            cache_dir=cache_dir,
            shard=ShardSpec(rank, RESIDENCY_RANKS, allgather=False),
        )
        shard = DataSource(path).load(cfg).frame
        view_bytes = max(view_bytes, shard.resident_nbytes())
        shard_rows += len(shard)
        # the rank materializes only its own rows for training
        rank_bytes.append(
            shard.resident_nbytes() + shard.to_numpy(np.float64).nbytes
        )
    ratio = baseline_bytes / max(max(rank_bytes), 1)
    return {
        "ranks": RESIDENCY_RANKS,
        "rows_covered": shard_rows == len(baseline),
        "baseline_resident_bytes": baseline_bytes,
        "max_rank_resident_bytes": max(rank_bytes),
        "shard_view_resident_bytes": view_bytes,
        "residency_ratio": round(ratio, 2),
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def assert_full_criteria(report: dict) -> None:
    assert_modes_criteria(report["modes"])
    parser = report["parser"]
    assert parser["identical"], "parser engines diverged"
    assert parser["nt3_speedup"] >= 1.5, (
        f"vectorized parser only {parser['nt3_speedup']:.2f}x on the "
        f"NA-laden NT3 file"
    )
    prefetch = report["prefetch"]
    assert prefetch["bit_identical"], "prefetched fit diverged from synchronous"
    assert prefetch["hidden_fraction"] >= 0.8, (
        f"prefetch hid only {prefetch['hidden_fraction']:.0%} of epoch load"
    )
    mmap = report["mmap"]
    assert mmap["shard_view_resident_bytes"] == 0, mmap
    assert mmap["residency_ratio"] >= 4.0, (
        f"mmap sharding only cut resident bytes "
        f"{mmap['residency_ratio']:.2f}x at {mmap['ranks']} ranks"
    )


def run_bench(full: bool = False, json_path: str | None = None) -> dict:
    shape = FULL_SHAPE if full else SMOKE_SHAPE
    with tempfile.TemporaryDirectory() as tmp:
        path = generate_nt3_file(tmp, shape)
        size_mb = os.path.getsize(path) / 1e6
        cache_dir = os.path.join(tmp, "cache")
        report = {
            "mode": "full" if full else "smoke",
            "file_mb": round(size_mb, 2),
            "modes": run_modes(path, cache_dir=cache_dir),
            "parser": run_parser_matrix(tmp, full),
            "prefetch": run_prefetch(tmp, full),
            "mmap": run_residency(path, cache_dir=cache_dir),
        }

    print(format_table(
        report["modes"], title=f"ingest modes on {size_mb:.1f} MB NT3-geometry file"
    ))
    print(format_table(report["parser"]["matrix"], title="parser matrix"))
    parser = report["parser"]
    print(
        f"parser headline (NT3 {parser['nt3_rows']}x{parser['nt3_cols']} with "
        f"NAs): {parser['nt3_ref_s']}s ref vs {parser['nt3_vec_s']}s vec = "
        f"{parser['nt3_speedup']}x"
    )
    prefetch = report["prefetch"]
    print(
        f"prefetch ({prefetch['epochs']} epochs): hidden "
        f"{prefetch['hidden_fraction']:.0%} of {prefetch['load_s']}s load, "
        f"wall {prefetch['overlapped_wall_s']}s vs "
        f"{prefetch['synchronous_wall_s']}s sync, "
        f"bit_identical={prefetch['bit_identical']}"
    )
    mmap = report["mmap"]
    print(
        f"mmap residency @ {mmap['ranks']} ranks: "
        f"{mmap['baseline_resident_bytes']} B/rank full vs "
        f"{mmap['max_rank_resident_bytes']} B/rank sharded "
        f"({mmap['residency_ratio']}x, views {mmap['shard_view_resident_bytes']} B)"
    )

    assert all(r["identical"] for r in report["modes"]), report["modes"]
    assert report["parser"]["identical"], "parser engines diverged"
    assert report["prefetch"]["bit_identical"], "prefetched fit diverged"
    assert report["mmap"]["shard_view_resident_bytes"] == 0, report["mmap"]
    assert report["mmap"]["rows_covered"], report["mmap"]
    if full:
        assert size_mb >= 100, f"full mode produced only {size_mb:.1f} MB"
        assert_full_criteria(report)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {json_path}")
    return report


# -- pytest entry points ----------------------------------------------------

def test_smoke_modes_bit_identical(capsys):
    with capsys.disabled():
        print()
        run_bench(full=False)


@pytest.mark.skipif(
    os.environ.get("INGEST_BENCH_FULL") != "1" or (os.cpu_count() or 1) < 2,
    reason="full ingest bench needs INGEST_BENCH_FULL=1 and >1 CPU",
)
def test_full_speedup_criteria(capsys):
    with capsys.disabled():
        print()
        run_bench(full=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true", help="small files, identity checks only")
    group.add_argument("--full", action="store_true", help="paper-scale files + speedup asserts")
    parser.add_argument("--json", metavar="PATH", help="write the report as JSON")
    args = parser.parse_args(argv)
    run_bench(full=args.full, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
