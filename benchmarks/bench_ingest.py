"""Microbenchmark: the ingest engines on a generated NT3-geometry file.

Measures the real parsers behind ``DataSource`` — serial chunked (the
paper's fix), span-parallel decode, and the binary column-store cache —
on a wide-row file shaped like NT3 train data, and checks the frames
are bit-identical across every mode.

Run standalone::

    python benchmarks/bench_ingest.py --smoke   # small file, CI-sized
    python benchmarks/bench_ingest.py --full    # >= 100 MB, asserts
                                                # parallel >= 2x chunked,
                                                # cached hit >= 10x any parse

The ``--full`` speedup assertions need real cores; ``--smoke`` only
checks correctness and prints the timing table. Under pytest the smoke
path runs as a test; the full path is opt-in (needs >1 CPU and the
``INGEST_BENCH_FULL=1`` environment variable).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.candle import get_benchmark
from repro.ingest import DataSource, LoaderConfig

#: generated-file geometry: NT3's wide rows at two sizes
SMOKE_SHAPE = dict(scale=0.02, sample_scale=0.1)   # ~0.5 MB
FULL_SHAPE = dict(scale=1.0, sample_scale=0.25)    # >= 100 MB


def generate_nt3_file(dirpath, shape: dict) -> str:
    bench = get_benchmark("nt3", **shape)
    train, _ = bench.write_files(dirpath, rng=np.random.default_rng(0))
    return str(train)


def run_modes(path: str, cache_dir: str) -> list[dict]:
    """Load ``path`` with every benched mode; returns timing/identity rows."""
    modes = [
        ("chunked (serial)", LoaderConfig(method="chunked")),
        ("parallel", LoaderConfig(method="parallel")),
        ("cached (miss)", LoaderConfig(method="cached", cache_dir=cache_dir)),
        ("cached (hit)", LoaderConfig(method="cached", cache_dir=cache_dir)),
    ]
    source = DataSource(path)
    rows, ref = [], None
    for label, config in modes:
        result = source.load(config)
        if ref is None:
            ref = result.frame
        rows.append(
            {
                "mode": label,
                "seconds": round(result.seconds, 3),
                "rows": result.rows,
                "identical": result.frame.equals(ref),
            }
        )
    return rows


def assert_full_criteria(rows: list[dict]) -> None:
    """The acceptance thresholds for the >= 100 MB file."""
    t = {r["mode"]: r["seconds"] for r in rows}
    assert all(r["identical"] for r in rows), rows
    parallel_speedup = t["chunked (serial)"] / t["parallel"]
    assert parallel_speedup >= 2.0, (
        f"parallel only {parallel_speedup:.2f}x over serial chunked"
    )
    fastest_text = min(t["chunked (serial)"], t["parallel"], t["cached (miss)"])
    cached_speedup = fastest_text / t["cached (hit)"]
    assert cached_speedup >= 10.0, (
        f"cached reload only {cached_speedup:.2f}x over the fastest text parse"
    )


def run_bench(full: bool = False) -> list[dict]:
    shape = FULL_SHAPE if full else SMOKE_SHAPE
    with tempfile.TemporaryDirectory() as tmp:
        path = generate_nt3_file(tmp, shape)
        size_mb = os.path.getsize(path) / 1e6
        rows = run_modes(path, cache_dir=os.path.join(tmp, "cache"))
    title = f"ingest modes on {size_mb:.1f} MB NT3-geometry file"
    print(format_table(rows, title=title))
    assert all(r["identical"] for r in rows), rows
    if full:
        assert size_mb >= 100, f"full mode produced only {size_mb:.1f} MB"
        assert_full_criteria(rows)
    return rows


# -- pytest entry points ----------------------------------------------------

def test_smoke_modes_bit_identical(capsys):
    with capsys.disabled():
        print()
        run_bench(full=False)


@pytest.mark.skipif(
    os.environ.get("INGEST_BENCH_FULL") != "1" or (os.cpu_count() or 1) < 2,
    reason="full ingest bench needs INGEST_BENCH_FULL=1 and >1 CPU",
)
def test_full_speedup_criteria(capsys):
    with capsys.disabled():
        print()
        run_bench(full=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true", help="small file, no speedup asserts")
    group.add_argument("--full", action="store_true", help=">= 100 MB file + asserts")
    args = parser.parse_args(argv)
    run_bench(full=args.full)
    return 0


if __name__ == "__main__":
    sys.exit(main())
