"""Microbenchmark: the functional ring allreduce over SPMD threads.

Measures the real repro.mpi collectives (thread rendezvous + NumPy data
movement) at a few rank counts, and checks basic sanity: the reduction
is correct and per-call time stays in the interactive range.
"""

import numpy as np
import pytest

from repro.mpi import run_spmd

ELEMENTS = 64 * 1024  # 512 KB of float64 per rank


def _allreduce_job(comm):
    arr = np.full(ELEMENTS, float(comm.rank + 1))
    out = comm.allreduce(arr, op="sum")
    return float(out[0])


@pytest.mark.parametrize("ranks", [2, 4, 8])
def test_ring_allreduce(benchmark, ranks):
    def run():
        return run_spmd(ranks, _allreduce_job)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    expected = sum(range(1, ranks + 1))
    assert all(v == pytest.approx(expected) for v in results)


def test_broadcast(benchmark):
    payload = np.random.default_rng(0).normal(size=ELEMENTS)

    def job(comm):
        got = comm.bcast(payload if comm.rank == 0 else None, root=0)
        return float(got.sum())

    def run():
        return run_spmd(4, job)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(v == pytest.approx(payload.sum()) for v in results)
