"""Figure 17: P1B2 Theta improvement — regenerates the paper's rows/series."""


def test_fig17(run_and_print):
    r = run_and_print("fig17")
    assert 38 < r.measured["max perf improvement %"] < 58
