"""Figure 7: power trace + timeline on 384 GPUs — regenerates the paper's rows/series."""


def test_fig7(run_and_print):
    r = run_and_print("fig7")
    assert r.measured["broadcast overhead s"] > 20
