"""Calibration anchors vs paper — regenerates the paper's rows/series."""


def test_calibration(run_and_print):
    r = run_and_print("calibration")
    assert all(row["ok"] for row in r.panels[""])
