"""Microbenchmark: the collective engine on a simulated Summit node pair.

Three measurements on the 2-node x 6-GPU topology (12 ranks):

- **bit-identity** — executes ring, rhd, hierarchical, and chunked
  schedules with real SPMD threads and asserts the results are bitwise
  equal to the flat reference allreduce (the engine's numerics
  contract);
- **simulated allreduce wall-clock** — prices NT3's fused gradient
  pieces under each algorithm schedule on the Summit fabric
  (alpha-beta-gamma), against the seed's flat tree allreduce. Full mode
  asserts hierarchical+fused is at least 1.5x the flat baseline;
- **broadcast overhead** — the fig12 sim at 384 GPUs: original vs
  chunked broadcast overhead, reported alongside the paper's ~9x
  reduction (43.72 s -> 4.9 s).

Run standalone::

    python benchmarks/bench_comms.py --smoke   # CI-sized, identity only
    python benchmarks/bench_comms.py --full    # + asserts hierarchical+fused
                                               #   >= 1.5x flat on the pair
    python benchmarks/bench_comms.py --smoke --json BENCH_comms.json

Under pytest the smoke path always runs; the full path is opt-in via
``COMMS_BENCH_FULL=1``.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.candle.nt3 import NT3_SPEC
from repro.cluster.machine import SUMMIT
from repro.comms import (
    CollectiveEngine,
    CollectiveOptions,
    Topology,
    plan_allreduce,
)
from repro.experiments import run_experiment
from repro.mpi import run_spmd
from repro.mpi.network import CollectiveCostModel

#: the simulated topology the acceptance gate names: 2 nodes x 6 GPUs
PAIR = Topology(world=12, local_size=6)

#: paper §5.2: broadcast overhead falls 43.72 s -> 4.9 s on 384 GPUs
PAPER_BROADCAST_REDUCTION_X = 43.72 / 4.9


def _fused_pieces(nbytes: int, cap: int) -> list[int]:
    pieces = [cap] * (nbytes // cap)
    if nbytes % cap:
        pieces.append(nbytes % cap)
    return pieces


def check_bit_identity(elements: int) -> dict[str, bool]:
    """Execute each schedule with real ranks; compare bits vs flat."""

    def worker(comm, opts):
        rng = np.random.default_rng(17 + comm.rank)
        data = rng.normal(size=elements) * 10.0 ** rng.integers(-3, 4)
        eng = CollectiveEngine(comm, options=opts)
        got = eng.allreduce(data.copy(), op="mean", name="g")
        ref = comm.allreduce(data.copy(), op="mean")
        return bool(np.array_equal(got, ref))

    cases = {
        "ring": (12, 6, CollectiveOptions(algorithm="ring")),
        "rhd": (8, 4, CollectiveOptions(algorithm="rhd")),
        "hierarchical": (12, 6, CollectiveOptions(algorithm="hierarchical")),
        "hierarchical_chunked": (
            12, 6, CollectiveOptions(algorithm="hierarchical", chunk_bytes=8 << 10),
        ),
        "auto": (12, 6, None),
    }
    out = {}
    for label, (world, local, opts) in cases.items():
        results = run_spmd(world, worker, opts, local_size=local)
        out[label] = all(results)
    return out


def simulated_allreduce(fusion_bytes: int, chunk_bytes: int) -> tuple[list[dict], dict]:
    """Price NT3's gradient on the node pair, per algorithm schedule."""
    fabric = SUMMIT.fabric
    nbytes = NT3_SPEC.gradient_bytes
    pieces = _fused_pieces(nbytes, fusion_bytes)

    # the seed path: one flat binomial-tree reduction per fused piece
    # (reduce to root + broadcast, every round moving the full piece
    # over the bounding inter-node link) — what comm.allreduce executes
    cm = CollectiveCostModel(fabric, ranks_per_node=PAIR.local_size)
    flat_s = sum(
        2 * cm.broadcast_tree(piece, PAIR.world)
        + piece * fabric.reduce_gamma_s_per_b * math.ceil(math.log2(PAIR.world))
        for piece in pieces
    )

    def planned(opts: CollectiveOptions) -> float:
        return sum(
            plan_allreduce(piece, PAIR, opts).seconds(fabric) for piece in pieces
        )

    variants = {
        "flat tree (seed)": flat_s,
        "ring": planned(CollectiveOptions(algorithm="ring")),
        "hierarchical": planned(CollectiveOptions(algorithm="hierarchical")),
        "hierarchical+fused chunks": planned(
            CollectiveOptions(algorithm="hierarchical", chunk_bytes=chunk_bytes)
        ),
    }
    rows = [
        {
            "schedule": label,
            "ms": round(seconds * 1e3, 2),
            "speedup_vs_flat": round(flat_s / seconds, 2),
        }
        for label, seconds in variants.items()
    ]
    summary = {
        "gradient_bytes": nbytes,
        "fused_pieces": len(pieces),
        "ms": {label: s * 1e3 for label, s in variants.items()},
        "speedup_hierarchical_fused_vs_flat": (
            flat_s / variants["hierarchical+fused chunks"]
        ),
    }
    return rows, summary


def broadcast_reduction() -> dict:
    """Sim-predicted fig12 broadcast overhead, original vs chunked."""
    res = run_experiment("fig12", fast=True)
    original = res.measured["original overhead s"]
    optimized = res.measured["optimized overhead s"]
    return {
        "original_s": original,
        "optimized_s": optimized,
        "reduction_x": original / optimized,
        "paper_reduction_x": PAPER_BROADCAST_REDUCTION_X,
    }


def run_bench(full: bool = False, json_path: str | None = None) -> dict:
    identity = check_bit_identity(elements=40_000 if full else 4_001)
    rows, allreduce_summary = simulated_allreduce(
        fusion_bytes=64 << 20, chunk_bytes=4 << 20
    )
    bcast = broadcast_reduction()

    print(format_table(
        rows,
        title=f"simulated NT3 allreduce, 2 nodes x 6 GPUs "
        f"({allreduce_summary['fused_pieces']} fused pieces)",
    ))
    print(
        "bit-identical vs flat allreduce: "
        + ", ".join(f"{k}={v}" for k, v in identity.items())
    )
    print(
        f"broadcast overhead (fig12 sim, 384 GPUs): "
        f"{bcast['original_s']:.2f} s -> {bcast['optimized_s']:.2f} s "
        f"({bcast['reduction_x']:.1f}x; paper ~{bcast['paper_reduction_x']:.1f}x)"
    )

    result = {
        "mode": "full" if full else "smoke",
        "topology": {"world": PAIR.world, "local_size": PAIR.local_size},
        "bit_identical": identity,
        "allreduce": allreduce_summary,
        "broadcast": bcast,
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {json_path}")

    assert all(identity.values()), f"bit-identity violated: {identity}"
    if full:
        speedup = allreduce_summary["speedup_hierarchical_fused_vs_flat"]
        assert speedup >= 1.5, (
            f"hierarchical+fused only {speedup:.2f}x over flat on the "
            f"simulated node pair (need >= 1.5x)"
        )
    return result


# -- pytest entry points ----------------------------------------------------

def test_smoke_comms_identity(capsys):
    with capsys.disabled():
        print()
        run_bench(full=False)


@pytest.mark.skipif(
    os.environ.get("COMMS_BENCH_FULL") != "1",
    reason="full comms bench needs COMMS_BENCH_FULL=1",
)
def test_full_comms_criteria(capsys):
    with capsys.disabled():
        print()
        run_bench(full=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true", help="CI-sized, identity checks only")
    group.add_argument("--full", action="store_true", help="+ speedup assertion on the node pair")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    args = parser.parse_args(argv)
    run_bench(full=args.full, json_path=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
